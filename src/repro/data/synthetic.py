"""Synthetic signal generation and anomaly injection.

The paper's benchmark uses the NAB, NASA (MSL/SMAP) and Yahoo S5 datasets,
which are not redistributable or reachable offline. This module generates
signals whose statistical character mirrors those datasets — periodic
telemetry with drifting baselines for NASA, web-traffic-like counts for
Yahoo, mixed real/artificial streams for NAB — and injects ground-truth
anomalies of known types so that the detection pipelines face the same kind
of problem the paper evaluates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.signal import LABELS_KEY, Dataset, Signal

__all__ = [
    "SignalGenerator",
    "WorkloadGenerator",
    "inject_anomalies",
    "generate_signal",
    "ANOMALY_TYPES",
    "WORKLOAD_TAXONOMY",
]

Interval = Tuple[int, int]

ANOMALY_TYPES = (
    "point",
    "collective",
    "contextual",
    "flatline",
    "noise_burst",
    "change_point",
)


class SignalGenerator:
    """Generate base (anomaly-free) signals of several realistic flavours.

    Args:
        random_state: seed controlling every stochastic choice, so dataset
            construction is fully reproducible.
    """

    def __init__(self, random_state: int = 0):
        self.rng = np.random.default_rng(random_state)

    def periodic(self, length: int, period: float = 100.0, amplitude: float = 1.0,
                 noise: float = 0.05, harmonics: int = 2) -> np.ndarray:
        """Smooth periodic signal with a few harmonics — telemetry-like."""
        t = np.arange(length, dtype=float)
        signal = np.zeros(length)
        for harmonic in range(1, harmonics + 1):
            phase = self.rng.uniform(0, 2 * np.pi)
            signal += (amplitude / harmonic) * np.sin(
                2 * np.pi * harmonic * t / period + phase
            )
        return signal + self.rng.normal(0, noise * amplitude, length)

    def random_walk(self, length: int, step: float = 0.05,
                    drift: float = 0.0) -> np.ndarray:
        """Integrated noise with optional drift — sensor-drift-like."""
        steps = self.rng.normal(drift, step, length)
        return np.cumsum(steps)

    def traffic(self, length: int, daily_period: float = 288.0,
                base: float = 100.0, noise: float = 0.1) -> np.ndarray:
        """Non-negative web-traffic-like counts with a daily cycle."""
        t = np.arange(length, dtype=float)
        daily = 0.5 * (1 + np.sin(2 * np.pi * t / daily_period - np.pi / 2))
        weekly = 0.15 * np.sin(2 * np.pi * t / (7 * daily_period))
        values = base * (0.3 + daily + weekly)
        values *= 1 + self.rng.normal(0, noise, length)
        return np.maximum(values, 0.0)

    def square_wave(self, length: int, period: float = 200.0,
                    amplitude: float = 1.0, noise: float = 0.03) -> np.ndarray:
        """On/off telemetry such as heater or valve states."""
        t = np.arange(length, dtype=float)
        signal = amplitude * np.sign(np.sin(2 * np.pi * t / period))
        return signal + self.rng.normal(0, noise * amplitude, length)

    def trend_seasonal(self, length: int, period: float = 150.0,
                       trend: float = 0.002, amplitude: float = 1.0,
                       noise: float = 0.05) -> np.ndarray:
        """Linear trend plus seasonality — Yahoo-synthetic-like."""
        t = np.arange(length, dtype=float)
        signal = trend * t + amplitude * np.sin(2 * np.pi * t / period)
        return signal + self.rng.normal(0, noise * amplitude, length)

    def mixture(self, length: int) -> np.ndarray:
        """Randomly-chosen flavour, used for heterogeneous datasets."""
        flavour = self.rng.choice(
            ["periodic", "random_walk", "traffic", "square_wave", "trend_seasonal"]
        )
        period = float(self.rng.uniform(50, 300))
        amplitude = float(self.rng.uniform(0.5, 3.0))
        if flavour == "periodic":
            return self.periodic(length, period=period, amplitude=amplitude)
        if flavour == "random_walk":
            return self.random_walk(length, step=0.05 * amplitude)
        if flavour == "traffic":
            return self.traffic(length, daily_period=period, base=100 * amplitude)
        if flavour == "square_wave":
            return self.square_wave(length, period=period, amplitude=amplitude)
        return self.trend_seasonal(length, period=period, amplitude=amplitude)


def inject_anomalies(values: np.ndarray, n_anomalies: int,
                     rng: np.random.Generator,
                     anomaly_types: Optional[Sequence[str]] = None,
                     min_length: int = 5, max_length: int = 50,
                     margin: float = 0.05) -> Tuple[np.ndarray, List[Interval]]:
    """Inject ``n_anomalies`` into a copy of ``values``.

    Args:
        values: 1D array of signal values.
        n_anomalies: number of anomalous intervals to inject.
        rng: random generator controlling placement and magnitude.
        anomaly_types: subset of :data:`ANOMALY_TYPES` to draw from.
        min_length: minimum anomaly duration (samples).
        max_length: maximum anomaly duration (samples).
        margin: fraction of the signal head/tail kept anomaly-free.

    Returns:
        A tuple ``(modified_values, intervals)`` where intervals are
        ``(start_index, end_index)`` pairs (inclusive).
    """
    values = np.asarray(values, dtype=float).copy()
    length = len(values)
    types = list(anomaly_types or ANOMALY_TYPES)
    invalid = set(types) - set(ANOMALY_TYPES)
    if invalid:
        raise ValueError(f"Unknown anomaly types: {sorted(invalid)}")

    scale = float(np.std(values)) or 1.0
    lo = int(length * margin)
    hi = int(length * (1 - margin))
    intervals: List[Interval] = []

    attempts = 0
    while len(intervals) < n_anomalies and attempts < n_anomalies * 50:
        attempts += 1
        kind = rng.choice(types)
        duration = 1 if kind == "point" else int(rng.integers(min_length, max_length + 1))
        if hi - lo <= duration + 1:
            break
        start = int(rng.integers(lo, hi - duration))
        end = start + duration - 1
        if any(not (end < s - 5 or start > e + 5) for s, e in intervals):
            continue

        segment = slice(start, end + 1)
        if kind == "point":
            values[start] += rng.choice([-1, 1]) * rng.uniform(4, 8) * scale
        elif kind == "collective":
            values[segment] += rng.choice([-1, 1]) * rng.uniform(2.5, 5) * scale
        elif kind == "contextual":
            local = values[segment]
            values[segment] = np.mean(local) + 0.1 * (local - np.mean(local))
        elif kind == "flatline":
            values[segment] = values[start]
        elif kind == "noise_burst":
            values[segment] += rng.normal(0, 3 * scale, duration)
        elif kind == "change_point":
            shift = rng.choice([-1, 1]) * rng.uniform(2, 4) * scale
            values[start:] += shift
            end = min(start + duration - 1, length - 1)

        intervals.append((start, end))

    intervals.sort()
    return values, intervals


def generate_signal(name: str, length: int, n_anomalies: int,
                    random_state: int = 0, flavour: str = "mixture",
                    interval: int = 1,
                    anomaly_types: Optional[Sequence[str]] = None,
                    metadata: Optional[dict] = None) -> Signal:
    """Generate a complete :class:`Signal` with injected ground truth.

    Args:
        name: signal name.
        length: number of samples.
        n_anomalies: number of anomalies to inject.
        random_state: seed for reproducibility.
        flavour: one of the :class:`SignalGenerator` methods or ``"mixture"``.
        interval: spacing between consecutive timestamps.
        anomaly_types: anomaly types to draw from.
        metadata: extra metadata stored on the signal.

    Returns:
        A :class:`Signal` whose ``anomalies`` hold the injected intervals in
        timestamp units.
    """
    if length < 10:
        raise ValueError("length must be at least 10 samples")
    generator = SignalGenerator(random_state)
    maker = getattr(generator, flavour, None)
    if maker is None:
        raise ValueError(f"Unknown signal flavour {flavour!r}")

    base = maker(length)
    values, index_intervals = inject_anomalies(
        base, n_anomalies, generator.rng, anomaly_types=anomaly_types
    )
    timestamps = np.arange(length, dtype=np.int64) * interval
    anomalies = [
        (int(timestamps[start]), int(timestamps[end]))
        for start, end in index_intervals
    ]
    meta = {"flavour": flavour, "random_state": random_state}
    meta.update(metadata or {})
    return Signal(
        name=name,
        timestamps=timestamps,
        values=values,
        anomalies=anomalies,
        metadata=meta,
    )


# --------------------------------------------------------------------------- #
# deterministic labeled workloads
# --------------------------------------------------------------------------- #

#: The anomaly taxonomy injected by :class:`WorkloadGenerator` (the four
#: classes the roadmap names; ``ablation_changepoints`` probes the last).
WORKLOAD_TAXONOMY = ("point", "contextual", "collective", "changepoint")


class WorkloadGenerator:
    """Deterministic generator of labeled (multi-channel) signal fleets.

    Every signal composes **seasonality x trend x regime shifts** on a
    shared latent base, mixes it into ``n_channels`` correlated channels,
    and injects ground-truth anomalies drawn from
    :data:`WORKLOAD_TAXONOMY`. Each injected anomaly is recorded twice, in
    lockstep:

    * as a plain ``(start, end)`` interval in ``Signal.anomalies`` (what
      the evaluation layer scores against), and
    * as a labeled dict ``{"start", "end", "class", "channels"}`` in
      ``Signal.metadata[LABELS_KEY]`` (what the per-class quality gate and
      the HIL layer consume).

    Determinism: all randomness flows through ``numpy``'s PCG64 generators
    seeded from :class:`numpy.random.SeedSequence`, with one spawned child
    sequence per signal index — identical output for identical seeds on
    every platform, Python version and multiprocessing start method, and
    signal ``i`` of a fleet is the same no matter how many signals are
    generated around it.

    Args:
        seed: master seed of the workload.
        n_channels: channels per signal.
        length: samples per signal.
        interval: spacing between consecutive timestamps.
        anomalies_per_signal: how many anomalies to inject per signal.
        taxonomy: anomaly classes to draw from (defaults to the full
            :data:`WORKLOAD_TAXONOMY`).
        noise: standard deviation of the per-channel observation noise,
            relative to the seasonal amplitude.
        n_regimes: number of piecewise baseline regimes composed into the
            latent base (1 disables regime shifts).
    """

    def __init__(self, seed: int = 0, n_channels: int = 1, length: int = 1000,
                 interval: int = 1, anomalies_per_signal: int = 3,
                 taxonomy: Optional[Sequence[str]] = None,
                 noise: float = 0.05, n_regimes: int = 2):
        if length < 50:
            raise ValueError("length must be at least 50 samples")
        if n_channels < 1:
            raise ValueError("n_channels must be at least 1")
        taxonomy = tuple(taxonomy or WORKLOAD_TAXONOMY)
        unknown = set(taxonomy) - set(WORKLOAD_TAXONOMY)
        if unknown:
            raise ValueError(
                f"Unknown anomaly classes {sorted(unknown)}; "
                f"choose from {WORKLOAD_TAXONOMY}"
            )
        self.seed = int(seed)
        self.n_channels = int(n_channels)
        self.length = int(length)
        self.interval = int(interval)
        self.anomalies_per_signal = int(anomalies_per_signal)
        self.taxonomy = taxonomy
        self.noise = float(noise)
        self.n_regimes = max(1, int(n_regimes))

    # ------------------------------------------------------------------ #
    def _rng_for(self, index: int) -> np.random.Generator:
        """Child generator for signal ``index`` (stable across fleet sizes)."""
        sequence = np.random.SeedSequence(self.seed, spawn_key=(index,))
        return np.random.default_rng(sequence)

    def _latent_base(self, rng: np.random.Generator) -> np.ndarray:
        """Seasonality x trend x regime shifts, one latent series."""
        t = np.arange(self.length, dtype=float)
        period = float(rng.uniform(60, 180))
        amplitude = float(rng.uniform(0.8, 1.5))
        seasonal = np.zeros(self.length)
        for harmonic in (1, 2):
            phase = rng.uniform(0, 2 * np.pi)
            seasonal += (amplitude / harmonic) * np.sin(
                2 * np.pi * harmonic * t / period + phase
            )
        trend = float(rng.uniform(-1.0, 1.0)) * t / self.length
        base = seasonal * (1.0 + 0.25 * trend) + trend

        # Benign regime shifts: piecewise baseline offsets the detector
        # must ride through without alarming (they are NOT labeled).
        if self.n_regimes > 1:
            boundaries = np.sort(rng.integers(
                self.length // 10, self.length * 9 // 10,
                size=self.n_regimes - 1))
            offset = 0.0
            for boundary in boundaries:
                offset += float(rng.uniform(-0.3, 0.3)) * amplitude
                base[int(boundary):] += offset
        return base

    def _mix_channels(self, base: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Correlated per-channel views of the latent base."""
        channels = np.empty((self.length, self.n_channels))
        t = np.arange(self.length, dtype=float)
        for channel in range(self.n_channels):
            gain = float(rng.uniform(0.6, 1.4))
            offset = float(rng.uniform(-0.5, 0.5))
            lag = int(rng.integers(0, 5))
            shifted = np.roll(base, lag)
            if lag:
                shifted[:lag] = base[0]
            detail_period = float(rng.uniform(15, 40))
            detail = 0.1 * np.sin(2 * np.pi * t / detail_period
                                  + rng.uniform(0, 2 * np.pi))
            channels[:, channel] = (
                gain * shifted + offset + detail
                + rng.normal(0, self.noise, self.length)
            )
        return channels

    def _inject(self, values: np.ndarray,
                rng: np.random.Generator) -> List[dict]:
        """Inject the taxonomy into ``values`` in place; return labels."""
        length, n_channels = values.shape
        scale = float(np.std(values)) or 1.0
        lo, hi = int(length * 0.05), int(length * 0.95)
        labels: List[dict] = []

        attempts = 0
        while len(labels) < self.anomalies_per_signal and attempts < 200:
            attempts += 1
            kind = self.taxonomy[int(rng.integers(len(self.taxonomy)))]
            duration = 1 if kind == "point" else int(rng.integers(15, 45))
            if hi - lo <= duration + 1:
                break
            start = int(rng.integers(lo, hi - duration))
            end = start + duration - 1
            if any(start <= label["end"] + 10 and end >= label["start"] - 10
                   for label in labels):
                continue

            n_affected = 1 if n_channels == 1 \
                else int(rng.integers(1, n_channels + 1))
            affected = sorted(
                int(c) for c in rng.choice(n_channels, size=n_affected,
                                           replace=False))
            segment = slice(start, end + 1)
            for channel in affected:
                column = values[:, channel]
                if kind == "point":
                    column[start] += float(rng.choice([-1, 1])) \
                        * float(rng.uniform(5, 9)) * scale
                elif kind == "collective":
                    column[segment] += float(rng.choice([-1, 1])) \
                        * float(rng.uniform(3, 5)) * scale
                elif kind == "contextual":
                    # Plausible values, wrong in context: the local
                    # structure is flattened onto its mean.
                    local = column[segment]
                    column[segment] = float(np.mean(local)) \
                        + 0.05 * (local - float(np.mean(local)))
                elif kind == "changepoint":
                    shift = float(rng.choice([-1, 1])) \
                        * float(rng.uniform(2.5, 4)) * scale
                    column[start:] += shift

            labels.append({
                "start": start, "end": end,
                "class": kind, "channels": affected,
            })

        labels.sort(key=lambda label: label["start"])
        return labels

    # ------------------------------------------------------------------ #
    def signal(self, index: int = 0, name: Optional[str] = None) -> Signal:
        """Generate labeled signal ``index`` of this workload."""
        rng = self._rng_for(int(index))
        base = self._latent_base(rng)
        values = self._mix_channels(base, rng)
        labels = self._inject(values, rng)

        timestamps = np.arange(self.length, dtype=np.int64) * self.interval
        scaled_labels = []
        anomalies = []
        for label in labels:
            scaled = dict(label)
            scaled["start"] = int(timestamps[label["start"]])
            scaled["end"] = int(timestamps[label["end"]])
            scaled_labels.append(scaled)
            anomalies.append((scaled["start"], scaled["end"]))

        return Signal(
            name=name or f"workload-{self.seed}-{index:04d}",
            timestamps=timestamps,
            values=values if self.n_channels > 1 else values[:, 0],
            anomalies=anomalies,
            metadata={
                "generator": "WorkloadGenerator",
                "seed": self.seed,
                "signal_index": int(index),
                "n_channels": self.n_channels,
                LABELS_KEY: scaled_labels,
            },
        )

    def fleet(self, n_signals: int, name: str = "synthetic-fleet") -> Dataset:
        """Generate a labeled :class:`Dataset` of ``n_signals`` signals."""
        if n_signals < 1:
            raise ValueError("n_signals must be at least 1")
        dataset = Dataset(
            name=name,
            metadata={"generator": "WorkloadGenerator", "seed": self.seed,
                      "n_channels": self.n_channels, "length": self.length},
        )
        for index in range(int(n_signals)):
            dataset.add_signal(self.signal(index))
        return dataset

    def fingerprint(self, n_signals: int) -> str:
        """Stable hex digest of an ``n_signals`` fleet's full content.

        Hashes every signal's timestamps, values and labels in canonical
        byte form — the determinism tests pin this digest across process
        start methods and Python versions.
        """
        import hashlib
        import json

        digest = hashlib.sha256()
        for signal in self.fleet(n_signals):
            digest.update(signal.timestamps.tobytes())
            digest.update(np.ascontiguousarray(signal.values).tobytes())
            digest.update(json.dumps(
                signal.labels, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()
