"""Signal and dataset containers.

The framework's input standard follows the paper: a signal is a table of
``(timestamp, value, ...)`` rows. :class:`Signal` wraps that table together
with a name and optional ground-truth anomalies, and :class:`Dataset` groups
signals the way the benchmark consumes them.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Signal", "Dataset", "LABELS_KEY"]

Interval = Tuple[int, int]

#: Metadata key under which labeled ground-truth anomalies are stored.
#: Each label is a dict with ``start`` / ``end`` timestamps (inclusive,
#: mirroring :attr:`Signal.anomalies`), an anomaly ``class`` from the
#: workload taxonomy, and the affected ``channels`` (column indices into
#: :attr:`Signal.values`). :meth:`Signal.slice` and :meth:`Signal.split`
#: keep these aligned with ``anomalies``.
LABELS_KEY = "anomaly_labels"


def _clip_interval(start: int, end: int, lo: int, hi: int) -> Optional[Interval]:
    """Clip an inclusive ``[start, end]`` interval to ``[lo, hi)``.

    Returns ``None`` when the interval does not overlap the range. The
    single clipping rule shared by anomaly intervals and labeled anomalies,
    so the two views can never drift apart.
    """
    if end < lo or start >= hi:
        return None
    return (max(int(start), lo), min(int(end), hi - 1))


@dataclass
class Signal:
    """A univariate or multivariate time series.

    Attributes:
        name: signal identifier.
        timestamps: integer array of shape ``(n,)``, strictly increasing.
        values: float array of shape ``(n,)`` or ``(n, m)`` with the channel
            values at each timestamp.
        anomalies: optional ground-truth anomalies as ``(start, end)``
            timestamp intervals.
        metadata: free-form dictionary (subsystem, units, source dataset...).
    """

    name: str
    timestamps: np.ndarray
    values: np.ndarray
    anomalies: List[Interval] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.timestamps = np.asarray(self.timestamps, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim == 1:
            self.values = self.values.reshape(-1, 1)
        if self.timestamps.ndim != 1:
            raise ValueError("timestamps must be one-dimensional")
        if len(self.timestamps) != len(self.values):
            raise ValueError(
                "timestamps and values must have the same length "
                f"({len(self.timestamps)} vs {len(self.values)})"
            )
        if len(self.timestamps) > 1 and np.any(np.diff(self.timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        self.anomalies = [
            (int(start), int(end)) for start, end in (self.anomalies or [])
        ]
        labels = self.metadata.get(LABELS_KEY)
        if labels:
            for label in labels:
                channels = label.get("channels")
                if channels is not None and self.n_channels:
                    bad = [c for c in channels
                           if not 0 <= int(c) < self.n_channels]
                    if bad:
                        raise ValueError(
                            f"Label channels {bad} out of range for "
                            f"{self.n_channels}-channel signal {self.name!r}"
                        )

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def n_channels(self) -> int:
        """Number of channels in the signal."""
        return self.values.shape[1]

    @property
    def interval(self) -> int:
        """Most common sampling interval (in timestamp units)."""
        if len(self.timestamps) < 2:
            return 1
        diffs = np.diff(self.timestamps)
        values, counts = np.unique(diffs, return_counts=True)
        return int(values[np.argmax(counts)])

    def to_array(self) -> np.ndarray:
        """Return the ``(timestamp, values...)`` table as a 2D float array."""
        return np.column_stack([self.timestamps.astype(float), self.values])

    @classmethod
    def from_array(cls, name: str, data: np.ndarray,
                   anomalies: Optional[Sequence[Interval]] = None,
                   metadata: Optional[dict] = None) -> "Signal":
        """Build a signal from a ``(timestamp, values...)`` table."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] < 2:
            raise ValueError(
                "data must be a 2D array with a timestamp column and at "
                "least one value column"
            )
        return cls(
            name=name,
            timestamps=data[:, 0].astype(np.int64),
            values=data[:, 1:],
            anomalies=list(anomalies or []),
            metadata=dict(metadata or {}),
        )

    @property
    def labels(self) -> List[dict]:
        """Labeled ground-truth anomalies (class + channels), if present.

        Labels live in ``metadata[LABELS_KEY]``; when a signal carries them
        they stay interval-aligned with :attr:`anomalies` through
        :meth:`slice` and :meth:`split`.
        """
        return list(self.metadata.get(LABELS_KEY, []))

    def slice(self, start: int, end: int) -> "Signal":
        """Return a new signal restricted to timestamps in ``[start, end)``.

        Ground-truth anomaly intervals — and the labeled taxonomy view in
        ``metadata[LABELS_KEY]``, when present — are clipped to the slice
        with the same rule, so the two views stay aligned (previously the
        metadata copy kept the unclipped labels, desynchronizing them from
        ``anomalies`` on every slice/split).
        """
        start, end = int(start), int(end)
        mask = (self.timestamps >= start) & (self.timestamps < end)
        anomalies = []
        for a_start, a_end in self.anomalies:
            clipped = _clip_interval(a_start, a_end, start, end)
            if clipped is not None:
                anomalies.append(clipped)
        metadata = dict(self.metadata)
        if metadata.get(LABELS_KEY):
            clipped_labels = []
            for label in metadata[LABELS_KEY]:
                clipped = _clip_interval(label["start"], label["end"],
                                         start, end)
                if clipped is None:
                    continue
                clipped_label = dict(label)
                clipped_label["start"], clipped_label["end"] = clipped
                clipped_labels.append(clipped_label)
            metadata[LABELS_KEY] = clipped_labels
        return Signal(
            name=self.name,
            timestamps=self.timestamps[mask],
            values=self.values[mask],
            anomalies=anomalies,
            metadata=metadata,
        )

    def split(self, ratio: float = 0.7) -> Tuple["Signal", "Signal"]:
        """Split the signal into leading/trailing portions by row count."""
        if not 0.0 < ratio < 1.0:
            raise ValueError("ratio must be strictly between 0 and 1")
        pivot_index = int(len(self) * ratio)
        pivot_index = max(1, min(pivot_index, len(self) - 1))
        pivot = int(self.timestamps[pivot_index])
        first = self.slice(int(self.timestamps[0]), pivot)
        second = self.slice(pivot, int(self.timestamps[-1]) + 1)
        return first, second

    def label_array(self) -> np.ndarray:
        """Return a 0/1 array marking samples inside ground-truth anomalies."""
        labels = np.zeros(len(self), dtype=int)
        for start, end in self.anomalies:
            labels[(self.timestamps >= start) & (self.timestamps <= end)] = 1
        return labels

    def to_csv(self, path) -> None:
        """Write the signal as a CSV with ``timestamp`` and value columns."""
        header = ["timestamp"] + [f"value_{i}" for i in range(self.n_channels)]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for timestamp, row in zip(self.timestamps, self.values):
                writer.writerow([int(timestamp)] + [float(v) for v in row])

    @classmethod
    def from_csv(cls, path, name: str = None,
                 anomalies: Optional[Sequence[Interval]] = None) -> "Signal":
        """Read a signal written by :meth:`to_csv`."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = [[float(cell) for cell in row] for row in reader if row]
        if not rows:
            raise ValueError(f"CSV file {path} contains no data rows")
        data = np.asarray(rows)
        if header and header[0] != "timestamp":
            raise ValueError("first CSV column must be 'timestamp'")
        return cls.from_array(name or str(path), data, anomalies=anomalies)


@dataclass
class Dataset:
    """A named collection of signals with ground-truth anomalies."""

    name: str
    signals: Dict[str, Signal] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def add_signal(self, signal: Signal) -> None:
        """Register a signal, keyed by its name."""
        if signal.name in self.signals:
            raise ValueError(f"Dataset {self.name} already has signal {signal.name}")
        self.signals[signal.name] = signal

    def __len__(self) -> int:
        return len(self.signals)

    def __iter__(self):
        return iter(self.signals.values())

    def __getitem__(self, name: str) -> Signal:
        return self.signals[name]

    @property
    def signal_names(self) -> List[str]:
        """Sorted list of signal names."""
        return sorted(self.signals)

    @property
    def n_anomalies(self) -> int:
        """Total ground-truth anomalies across signals."""
        return sum(len(signal.anomalies) for signal in self)

    @property
    def average_length(self) -> float:
        """Average signal length in samples."""
        if not self.signals:
            return 0.0
        return float(np.mean([len(signal) for signal in self]))

    def summary(self) -> dict:
        """Return the Table 2 style summary row for this dataset."""
        return {
            "dataset": self.name,
            "signals": len(self),
            "anomalies": self.n_anomalies,
            "avg_length": round(self.average_length, 1),
        }
