"""Concept-drift detection for streaming deployments.

The paper's discussion (§5, "Mixing supervised and unsupervised") notes
that pipelines need to be updated when drift is observed in the streaming
data (citing Wang & Abraham 2015 and Webb et al. 2017). This module
provides the two classic detectors used for that purpose:

* :class:`PageHinkley` — an online cumulative-deviation test that flags a
  sustained shift in the mean;
* :class:`DistributionDriftDetector` — a windowed two-sample
  Kolmogorov–Smirnov test comparing a reference window against the most
  recent window.

The :class:`DriftMonitor` ties a detector to a retraining callback so a
deployed pipeline can be refreshed when drift is confirmed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

import numpy as np
from scipy import stats

__all__ = ["PageHinkley", "DistributionDriftDetector", "DriftMonitor"]


class PageHinkley:
    """Page–Hinkley test for a sustained increase or decrease of the mean.

    Args:
        delta: magnitude tolerance — deviations smaller than this do not
            accumulate.
        threshold: cumulative deviation at which drift is signalled.
        min_samples: observations required before drift can be signalled.

    Cold start: during the first ``min_samples`` observations the running
    mean and the cumulative deviations are updated but :meth:`update`
    always returns ``False`` — drift can fire at the ``min_samples``-th
    observation at the earliest, never before. Call :meth:`reset` after a
    confirmed retrain so the warm-up restarts against the new regime.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 50.0,
                 min_samples: int = 30):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        """Forget all accumulated state."""
        self._count = 0
        self._mean = 0.0
        self._cumulative_up = 0.0
        self._cumulative_down = 0.0
        self._min_up = 0.0
        self._max_down = 0.0
        self.drift_detected = False

    def update(self, value: float) -> bool:
        """Consume one observation; return True when drift is signalled."""
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count

        deviation = value - self._mean
        self._cumulative_up += deviation - self.delta
        self._cumulative_down += deviation + self.delta
        self._min_up = min(self._min_up, self._cumulative_up)
        self._max_down = max(self._max_down, self._cumulative_down)

        if self._count < self.min_samples:
            return False
        increase = self._cumulative_up - self._min_up
        decrease = self._max_down - self._cumulative_down
        self.drift_detected = (increase > self.threshold
                               or decrease > self.threshold)
        return self.drift_detected


class DistributionDriftDetector:
    """Two-sample Kolmogorov–Smirnov drift test over sliding windows.

    The first ``window_size`` observations form the reference window; once
    a further ``window_size`` observations accumulate, the two windows are
    compared with a KS test and drift is signalled when the p-value drops
    below ``alpha``.

    Cold start: no test runs — and therefore no drift can fire — until the
    reference window is full *and* the current window holds another full
    ``window_size`` observations, i.e. the earliest possible drift signal
    is at observation ``2 * window_size``. Call :meth:`reset` after a
    confirmed retrain so a fresh reference window is collected from the
    post-retrain regime.
    """

    def __init__(self, window_size: int = 100, alpha: float = 0.01):
        if window_size < 10:
            raise ValueError("window_size must be at least 10")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.window_size = int(window_size)
        self.alpha = float(alpha)
        self.reset()

    def reset(self) -> None:
        """Forget all accumulated state."""
        self._reference: List[float] = []
        self._current: deque = deque(maxlen=self.window_size)
        self.drift_detected = False
        self.last_p_value: Optional[float] = None

    def update(self, value: float) -> bool:
        """Consume one observation; return True when drift is signalled."""
        value = float(value)
        if len(self._reference) < self.window_size:
            self._reference.append(value)
            return False
        self._current.append(value)
        if len(self._current) < self.window_size:
            return False

        statistic, p_value = stats.ks_2samp(self._reference, list(self._current))
        self.last_p_value = float(p_value)
        self.drift_detected = p_value < self.alpha
        return self.drift_detected


class DriftMonitor:
    """Feed a stream to a drift detector and trigger retraining on drift.

    Args:
        detector: a detector with ``update(value) -> bool`` and ``reset()``.
        on_drift: callback invoked with the sample index whenever drift is
            confirmed (e.g. schedule a pipeline refresh, as the paper's
            weekly batch update does for the satellite team).
        cooldown: samples to ignore after a drift before detecting again.
    """

    def __init__(self, detector, on_drift: Optional[Callable[[int], None]] = None,
                 cooldown: int = 50):
        self.detector = detector
        self.on_drift = on_drift
        self.cooldown = int(cooldown)
        self.drift_points: List[int] = []
        self._samples_seen = 0
        self._since_last = None

    def reset(self) -> None:
        """Restart detection after a confirmed retrain.

        Resets the underlying detector (restarting its cold-start warm-up
        against the post-retrain regime) and clears the cooldown, while the
        global sample counter and the ``drift_points`` history are kept so
        past drifts remain addressable.
        """
        self.detector.reset()
        self._since_last = None

    def consume(self, values) -> List[int]:
        """Consume a batch of values; return the global drift indices found."""
        found = []
        for value in np.asarray(values, dtype=float).ravel():
            index = self._samples_seen
            self._samples_seen += 1
            if self._since_last is not None and self._since_last < self.cooldown:
                self._since_last += 1
                continue
            if self.detector.update(value):
                found.append(index)
                self.drift_points.append(index)
                if self.on_drift is not None:
                    self.on_drift(index)
                self.detector.reset()
                self._since_last = 0
        return found
