"""``repro.streaming``: concept-drift detection for deployed pipelines (paper §5)."""

from repro.streaming.drift import (
    DistributionDriftDetector,
    DriftMonitor,
    PageHinkley,
)

__all__ = ["PageHinkley", "DistributionDriftDetector", "DriftMonitor"]
