"""The stateless queue worker: ``python -m repro.worker``.

A worker owns no state beyond its process: it opens the queue file it
was pointed at, claims one work unit at a time, executes it through the
existing executor stack, acknowledges the result, and exits cleanly when
the queue drains (or on SIGTERM). Everything that must survive the
worker — the unit, its delivery count, its result — lives in the queue,
so a fleet scales by simply starting more workers against the same path
and any worker can be killed at any instant without losing work: its
lease expires and the unit is redelivered elsewhere.

While a unit executes, a background heartbeat renews the lease at a
third of the visibility timeout, so long jobs are not redelivered
mid-flight; a worker that dies stops heartbeating and the normal expiry
path takes over.

Work-unit dictionaries are dispatched on their ``task`` field:

* ``mapped`` — ``unit["function"](unit["item"])``, the generic
  :meth:`Executor.map` payload (module-level picklable functions);
* ``benchmark_job`` — one benchmark (pipeline, signal) job dictionary,
  run through :func:`repro.benchmark.runner._execute_benchmark_job`
  (which honours the job's own ``pipeline_executor`` — ``"process"``
  keeps the shared-memory fast path inside the worker);
* ``detect_batch`` — a ``POST /detect/batch`` body, run through the API
  layer's batched detection.

With ``--checkpoint-dir`` every finished *record-shaped* result is also
appended to a per-worker JSONL checkpoint (``worker-<id>.jsonl``) before
the queue acknowledgement, giving the fleet the same crash-resumable
audit trail the sharded benchmark runner keeps — re-delivered units may
produce duplicate lines across files, which
:func:`repro.benchmark.results.merge_shard_checkpoints` deduplicates by
job key.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import threading
import time
from typing import List, Optional

from repro.distributed.queue import Lease, WorkQueue

__all__ = ["main", "drain_queue", "execute_work_unit", "WORKER_CRASH_ENV"]

#: Test/fault-injection hook (also a CLI flag): the worker calls
#: ``os._exit`` — no cleanup, indistinguishable from SIGKILL — right
#: after its N-th successful claim, while still holding the lease. The
#: CI ``bench-distributed`` leg uses it to prove crashed leases are
#: redelivered without loss or duplication.
WORKER_CRASH_ENV = "REPRO_WORKER_CRASH_AFTER_CLAIMS"


def execute_work_unit(unit: dict) -> object:
    """Execute one work unit and return its picklable result."""
    task = unit.get("task")
    if task == "mapped":
        return unit["function"](unit["item"])
    if task == "benchmark_job":
        from repro.benchmark.runner import _execute_benchmark_job

        return _execute_benchmark_job(unit["job"])
    if task == "detect_batch":
        from repro.api.rest import SintelAPI

        return SintelAPI._run_detect_batch(unit["body"])
    raise ValueError(f"Unknown work-unit task {task!r}")


class _LeaseHeartbeat:
    """Background lease renewal while one unit executes."""

    def __init__(self, queue: WorkQueue, lease: Lease):
        self.queue = queue
        self.lease = lease
        self.interval = max(queue.visibility_timeout / 3.0, 0.01)
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.queue.heartbeat(self.lease):
                # The lease expired and was redelivered: the queue will
                # reject our eventual complete(); stop renewing.
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _checkpoint_record(handle, key: str, result: object) -> None:
    """Append one benchmark-style checkpoint line for a finished unit."""
    if handle is None or not isinstance(result, dict):
        return
    handle.write(json.dumps(
        {"kind": "record", "key": key, "record": result},
        default=float) + "\n")
    handle.flush()


def drain_queue(queue: WorkQueue, worker_id: Optional[str] = None,
                max_jobs: Optional[int] = None, poll_interval: float = 0.05,
                checkpoint_dir: Optional[str] = None,
                stop: Optional[threading.Event] = None,
                crash_after_claims: Optional[int] = None) -> int:
    """Pull and execute units until the queue drains; returns completions.

    The loop exits when (a) no unit is claimable *and* nothing is leased
    to any worker — i.e. the queue is truly finished, not merely waiting
    on a sibling's in-flight lease — (b) ``max_jobs`` completions were
    reached, or (c) ``stop`` is set (the SIGTERM path: the in-flight
    unit is finished and acknowledged first, so a drained stop never
    abandons work).

    Execution errors are reported through :meth:`WorkQueue.fail` — the
    unit retries elsewhere or dead-letters; the worker itself keeps
    going. Checkpoint lines are written *before* the acknowledgement, so
    a crash between the two produces (at worst) a duplicate line that
    merge-time deduplication removes — never a lost record.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    stop = stop or threading.Event()
    completed = 0
    claims = 0
    checkpoint = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        checkpoint = open(
            os.path.join(checkpoint_dir, f"worker-{worker_id}.jsonl"), "a")
    try:
        while not stop.is_set():
            lease = queue.claim(worker=worker_id)
            if lease is None:
                if queue.unfinished(sweep=False) == 0:
                    break
                # Siblings hold leases (or backoff timers are pending):
                # wait for completion or expiry rather than exiting and
                # stranding a redelivery with no worker to pick it up.
                time.sleep(poll_interval)
                continue
            claims += 1
            if crash_after_claims is not None \
                    and claims >= crash_after_claims:
                # Fault injection: die like SIGKILL, lease still held.
                os._exit(137)
            heartbeat = _LeaseHeartbeat(queue, lease)
            try:
                result = execute_work_unit(lease.unit)
            except Exception as error:  # noqa: BLE001 - queue-level retry
                heartbeat.stop()
                queue.fail(lease, f"{type(error).__name__}: {error}")
                continue
            heartbeat.stop()
            if not heartbeat.lost.is_set():
                _checkpoint_record(checkpoint, lease.key, result)
            if queue.complete(lease, result):
                completed += 1
                if max_jobs is not None and completed >= max_jobs:
                    break
    finally:
        if checkpoint is not None:
            checkpoint.close()
    return completed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Stateless work-queue worker: pulls units from a "
                    "durable queue, executes them, exits on drain or "
                    "SIGTERM.",
    )
    parser.add_argument("--queue", required=True,
                        help="path of the WorkQueue SQLite file")
    parser.add_argument("--worker-id", default=None,
                        help="identity recorded on leases "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after completing this many units")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between claim attempts while "
                             "siblings hold leases (default: 0.05)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="append finished records to "
                             "worker-<id>.jsonl in this directory")
    parser.add_argument("--crash-after-claims", type=int, default=None,
                        help="fault injection: os._exit(137) right after "
                             "the N-th claim, lease still held (also via "
                             f"the {WORKER_CRASH_ENV} environment "
                             "variable)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Worker process entry point; returns the exit code."""
    args = build_parser().parse_args(argv)

    # Reclaim shared-memory segments a previously killed worker on this
    # host may have stranded (the names embed the creator pid, so only
    # segments of dead processes are swept).
    from repro.core.executor import sweep_orphan_segments

    sweep_orphan_segments()

    crash_after = args.crash_after_claims
    if crash_after is None and os.environ.get(WORKER_CRASH_ENV):
        crash_after = int(os.environ[WORKER_CRASH_ENV])

    stop = threading.Event()

    def _terminate(signum, frame):  # pragma: no cover - signal path
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass

    queue = WorkQueue(args.queue)
    completed = drain_queue(
        queue,
        worker_id=args.worker_id,
        max_jobs=args.max_jobs,
        poll_interval=args.poll_interval,
        checkpoint_dir=args.checkpoint_dir,
        stop=stop,
        crash_after_claims=crash_after,
    )
    counts = queue.counts()
    print(f"worker done: completed={completed} queue={counts}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
