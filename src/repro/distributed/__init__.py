"""The distributed fleet tier: queue-backed execution across workers.

Scaling past one host needs three pieces the in-process executors do not
have: a **durable work queue** that survives worker crashes
(:class:`~repro.distributed.queue.WorkQueue`, a broker-less SQLite file
any number of processes can share), **stateless workers** that pull,
execute and acknowledge work units (``python -m repro.worker``), and an
executor that drives both while keeping the established
:class:`~repro.core.executor.Executor` contract
(:class:`~repro.distributed.executor.DistributedExecutor`, registered as
``"distributed"``).

Work units are plain picklable dictionaries (the same property the plan
IR and benchmark jobs already have), results aggregate idempotently
through lease fencing plus
:func:`repro.benchmark.results.merge_shard_checkpoints`, and the
single-host degenerate case — ``benchmark(..., executor="distributed",
workers=N)`` — spawns N local worker processes against a temporary
queue.
"""

from repro.distributed.executor import DistributedExecutor
from repro.distributed.queue import Lease, WorkQueue
from repro.distributed.worker import drain_queue, execute_work_unit

__all__ = [
    "WorkQueue",
    "Lease",
    "DistributedExecutor",
    "drain_queue",
    "execute_work_unit",
]
