"""The fleet executor: :meth:`Executor.map` over a durable work queue.

``DistributedExecutor`` keeps the established executor contract — take a
picklable function and a list of picklable items, return results in item
order, report completions through the ``progress`` hook — but routes the
fan-out through a :class:`~repro.distributed.queue.WorkQueue` instead of
an in-process pool. Each item becomes a durable work unit; N stateless
worker processes (``python -m repro.worker``) pull, execute and
acknowledge units against the shared queue file while the parent watches
the queue, streams progress, and respawns workers that die. The payoff
over :class:`~repro.core.executor.ProcessExecutor` is not raw speed on
one healthy host — it is *survivability and horizontal scale*: a
SIGKILL'd worker costs one lease timeout, not the fan-out; a re-run
against the same ``queue_path`` resumes from the finished units; and the
queue file is the only coordination point, so workers on other hosts
sharing the path join the same fleet.

``max_workers=0`` is the inline degenerate mode: the parent drains the
queue itself, in process — the cheapest way to exercise the full
enqueue/lease/complete machinery (tests, single-core CI) with zero
subprocess overhead.

Items that are dictionaries with a string ``"key"`` (benchmark jobs) are
enqueued under that key, making enqueue idempotent across re-runs; other
items get positional ``map-NNNNNN`` keys. Units that exhaust their
delivery attempts dead-letter, and the map raises
:class:`~repro.exceptions.ExecutorError` naming them rather than
returning partial results.
"""

from __future__ import annotations

import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import warnings
from typing import Callable, Dict, Iterable, List, Optional

import repro
from repro.core.executor import (
    EXECUTORS,
    Executor,
    SerialExecutor,
    sweep_orphan_segments,
)
from repro.distributed.queue import WorkQueue
from repro.distributed.worker import drain_queue
from repro.exceptions import ExecutorError

__all__ = ["DistributedExecutor", "INJECT_CRASH_ENV"]

#: Fault injection for the fleet: ``"<worker-index>:<nth-claim>"`` makes
#: the initial worker with that index die (``os._exit``, SIGKILL-like)
#: right after its N-th claim, lease still held. Respawned replacements
#: never inherit the flag, so the run proves crash *recovery*: the lease
#: expires, the unit redelivers, and the final results are identical to
#: an uninjected run.
INJECT_CRASH_ENV = "REPRO_DIST_INJECT_CRASH"


class DistributedExecutor(Executor):
    """Fan ``map`` out over stateless workers via a durable work queue.

    Args:
        max_workers: worker processes to spawn (default 2); ``0`` drains
            the queue inline in the parent process.
        queue_path: path of the shared queue file. Default: a temporary
            file, removed after the map. Pass an explicit path to make
            the run resumable (finished units are skipped on re-run) or
            to share the queue with externally started workers.
        checkpoint_dir: when given, workers also append every finished
            record-shaped result to ``worker-<id>.jsonl`` files here
            (merged via ``merge_shard_checkpoints(..., dedupe=True)``).
        visibility_timeout / max_attempts / retry_backoff: queue tuning
            (see :class:`~repro.distributed.queue.WorkQueue`).
        poll_interval: seconds between the parent's queue polls and the
            workers' claim retries.
        respawn_limit: replacement workers the parent may start after
            crashes before giving up (default ``2 * max_workers + 2``).
    """

    name = "distributed"

    def __init__(self, max_workers: Optional[int] = None,
                 queue_path: Optional[str] = None,
                 checkpoint_dir: Optional[str] = None,
                 visibility_timeout: Optional[float] = None,
                 max_attempts: Optional[int] = None,
                 retry_backoff: Optional[float] = None,
                 poll_interval: float = 0.05,
                 respawn_limit: Optional[int] = None):
        if max_workers is None:
            max_workers = 2
        if max_workers < 0:
            raise ExecutorError("max_workers must be non-negative")
        self.max_workers = max_workers
        self.queue_path = queue_path
        self.checkpoint_dir = checkpoint_dir
        self.visibility_timeout = visibility_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.poll_interval = poll_interval
        if respawn_limit is None:
            respawn_limit = 2 * max_workers + 2
        self.respawn_limit = respawn_limit

    # -- subprocess handles must never ride along with a pickled pipeline
    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    # ------------------------------------------------------------------ #
    # the Executor contract
    # ------------------------------------------------------------------ #
    def run_plan(self, plan, context, fit=False, profile=False):
        # Plan nodes close over live pipeline objects — they are not
        # durable work units. The distributed tier parallelizes *across*
        # jobs; each job's own pipeline picks serial/threaded/process for
        # its steps. Degrade to the exact serial semantics.
        return SerialExecutor().run_plan(plan, context, fit=fit,
                                         profile=profile)

    def map(self, function: Callable, items: Iterable,
            progress: Optional[Callable[[int, object], None]] = None) -> List:
        items = list(items)
        if not items:
            return []
        try:
            pickle.dumps(function)
        except Exception:
            warnings.warn(
                "DistributedExecutor.map received an unpicklable function; "
                "running serially. Use a module-level function to "
                "distribute across workers.",
                RuntimeWarning, stacklevel=2,
            )
            return SerialExecutor().map(function, items, progress=progress)

        owns_queue = self.queue_path is None
        if owns_queue:
            tempdir = tempfile.mkdtemp(prefix="repro-queue-")
            path = os.path.join(tempdir, "queue.sqlite")
        else:
            path = self.queue_path
        queue = WorkQueue(path,
                          visibility_timeout=self.visibility_timeout,
                          max_attempts=self.max_attempts,
                          retry_backoff=self.retry_backoff)
        try:
            keys = self._unit_keys(items)
            for key, item in zip(keys, items):
                queue.put("mapped", {"task": "mapped", "function": function,
                                     "item": item}, key=key)
            reported: set = set()
            if self.max_workers == 0:
                drain_queue(queue, worker_id="inline",
                            poll_interval=self.poll_interval,
                            checkpoint_dir=self.checkpoint_dir)
                self._report_progress(queue, keys, progress, reported)
            else:
                self._drive_fleet(queue, path, keys, progress, reported)
            return self._collect(queue, keys)
        finally:
            if owns_queue:
                shutil.rmtree(tempdir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # unit keys, progress, results
    # ------------------------------------------------------------------ #
    @staticmethod
    def _unit_keys(items: List) -> List[str]:
        """Stable queue keys, one per item, unique within the call.

        Dictionary items carrying a string ``"key"`` (benchmark jobs) keep
        it — the property that makes re-enqueue and resume idempotent;
        anything else is keyed by position. A duplicated item key is
        disambiguated with its position so no item silently disappears.
        """
        keys: List[str] = []
        seen: set = set()
        for index, item in enumerate(items):
            key = None
            if isinstance(item, dict):
                candidate = item.get("key")
                if isinstance(candidate, str) and candidate:
                    key = candidate
            if key is None:
                key = f"map-{index:06d}"
            elif key in seen:
                key = f"{key}#{index}"
            seen.add(key)
            keys.append(key)
        return keys

    @staticmethod
    def _report_progress(queue: WorkQueue, keys: List[str],
                         progress: Optional[Callable], reported: set) -> None:
        if progress is None:
            return
        index_of = {key: index for index, key in enumerate(keys)}
        for key in queue.finished_keys():
            if key in reported or key not in index_of:
                continue
            reported.add(key)
            progress(index_of[key], queue.result(key))

    def _collect(self, queue: WorkQueue, keys: List[str]) -> List:
        wanted = set(keys)
        dead = [letter for letter in queue.dead_letters()
                if letter["key"] in wanted]
        if dead:
            summary = "; ".join(
                f"{letter['key']} (attempts={letter['attempts']}): "
                f"{letter['error']}" for letter in dead[:5])
            raise ExecutorError(
                f"{len(dead)} work unit(s) exhausted their delivery "
                f"attempts and were dead-lettered: {summary}")
        results = queue.results()
        missing = [key for key in keys if key not in results]
        if missing:
            raise ExecutorError(
                f"{len(missing)} work unit(s) never completed "
                f"(first: {missing[0]!r}) — queue state: {queue.counts()}")
        return [results[key] for key in keys]

    # ------------------------------------------------------------------ #
    # the worker fleet
    # ------------------------------------------------------------------ #
    def _crash_injection(self) -> Dict[int, int]:
        """Parse :data:`INJECT_CRASH_ENV` into ``{worker_index: claims}``."""
        raw = os.environ.get(INJECT_CRASH_ENV, "").strip()
        if not raw:
            return {}
        injected: Dict[int, int] = {}
        for spec in raw.split(","):
            index, _, claims = spec.partition(":")
            injected[int(index)] = int(claims or 1)
        return injected

    def _spawn(self, path: str, sequence: int,
               crash_after: Optional[int]) -> tuple:
        """Start one worker subprocess; returns ``(process, log_path)``."""
        env = dict(os.environ)
        env.pop(INJECT_CRASH_ENV, None)
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_root, env.get("PYTHONPATH", "")) if part)
        command = [sys.executable, "-m", "repro.worker",
                   "--queue", path,
                   "--worker-id", f"w{sequence}",
                   "--poll-interval", str(self.poll_interval)]
        if self.checkpoint_dir:
            command += ["--checkpoint-dir", self.checkpoint_dir]
        if crash_after is not None:
            command += ["--crash-after-claims", str(crash_after)]
        log_path = f"{path}.w{sequence}.log"
        with open(log_path, "ab") as log:
            process = subprocess.Popen(command, env=env,
                                       stdout=log, stderr=log)
        return process, log_path

    @staticmethod
    def _log_tail(log_path: str, limit: int = 2000) -> str:
        try:
            with open(log_path, "rb") as handle:
                data = handle.read()
        except OSError:
            return ""
        return data[-limit:].decode("utf-8", "replace").strip()

    def _drive_fleet(self, queue: WorkQueue, path: str, keys: List[str],
                     progress: Optional[Callable], reported: set) -> None:
        sweep_orphan_segments()
        crash = self._crash_injection()
        workers = [self._spawn(path, index, crash.get(index))
                   for index in range(self.max_workers)]
        sequence = self.max_workers
        respawns = 0
        try:
            # unfinished() sweeps expired leases, so even a fully crashed
            # fleet keeps redelivery moving while the parent watches.
            while queue.unfinished() > 0:
                self._report_progress(queue, keys, progress, reported)
                alive = [entry for entry in workers
                         if entry[0].poll() is None]
                while len(alive) < self.max_workers \
                        and respawns < self.respawn_limit:
                    respawns += 1
                    alive.append(self._spawn(path, sequence, None))
                    sequence += 1
                if not alive:
                    dead_log = self._log_tail(workers[-1][1])
                    raise ExecutorError(
                        "Every distributed worker died and the respawn "
                        f"budget ({self.respawn_limit}) is spent. Last "
                        f"worker log:\n{dead_log}")
                workers = alive
                time.sleep(self.poll_interval)
            # Drained: workers exit on their own once nothing is claimable.
            deadline = time.time() + max(30.0, queue.visibility_timeout)
            for process, log_path in workers:
                remaining = max(0.1, deadline - time.time())
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    process.wait(timeout=10.0)
            self._report_progress(queue, keys, progress, reported)
        finally:
            for process, _ in workers:
                if process.poll() is None:
                    process.kill()
                    process.wait()


# Self-registration: `get_executor("distributed")` imports this module
# lazily (see _LAZY_EXECUTORS in repro.core.executor) and the name
# becomes a first-class registry entry from then on.
EXECUTORS[DistributedExecutor.name] = DistributedExecutor
