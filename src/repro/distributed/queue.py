"""A durable, broker-less work queue with lease semantics.

The queue is one SQLite file: every producer and worker opens its own
short-lived connection, so any number of processes — on one host via a
shared filesystem path — coordinate without a message broker. SQLite's
file locking provides the atomicity; ``BEGIN IMMEDIATE`` transactions
make claim/complete/fail single winner-takes-all operations.

Delivery contract (at-least-once with fencing):

* ``put`` enqueues a picklable work unit under a unique ``key``;
  re-enqueuing an existing key is a no-op, so producers are idempotent.
* ``claim`` atomically leases the oldest ready unit to a worker for
  ``visibility_timeout`` seconds and increments its delivery ``attempts``
  counter. A worker that stops heartbeating (crash, SIGKILL, network
  partition) simply lets the lease expire: the next ``claim`` sweep
  returns the unit to ``ready`` — after a linear backoff — or moves it
  to ``dead`` once ``max_attempts`` deliveries are spent.
* ``heartbeat`` extends a live lease; it returns ``False`` once the
  lease was lost (expired and redelivered), telling the worker its
  result will be discarded.
* ``complete`` / ``fail`` are fenced by the lease id: a stale worker —
  one whose lease expired and whose unit was redelivered — cannot
  overwrite the outcome of the redelivery, so a unit is **done exactly
  once** even though it may be *executed* more than once.

Lease states (also mirrored in :data:`repro.db.schema.COLLECTIONS` as
the ``work_queue`` collection):

``ready`` → ``leased`` → ``done``
                      ↘ ``ready`` (failure / expiry, attempts left)
                      ↘ ``dead``  (failure / expiry, attempts spent)
"""

from __future__ import annotations

import contextlib
import os
import pickle
import sqlite3
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.db.schema import WORK_QUEUE_STATES, new_document
from repro.exceptions import ExecutorError

__all__ = ["WorkQueue", "Lease", "QueueError"]


class QueueError(ExecutorError):
    """A work-queue operation failed."""


@dataclass
class Lease:
    """A claimed work unit: the worker's handle for heartbeat/ack calls.

    ``lease_id`` is the fencing token: every queue mutation a worker
    performs carries it, and the queue rejects mutations whose token no
    longer matches the row — the signature of an expired-and-redelivered
    lease.
    """

    job_id: int
    key: str
    kind: str
    unit: dict
    lease_id: str
    attempts: int
    expires_at: float


_SCHEMA = """
CREATE TABLE IF NOT EXISTS work_queue (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    key TEXT NOT NULL UNIQUE,
    kind TEXT NOT NULL,
    payload BLOB NOT NULL,
    status TEXT NOT NULL DEFAULT 'ready',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    lease_id TEXT,
    lease_expires REAL,
    not_before REAL NOT NULL DEFAULT 0,
    worker TEXT,
    result BLOB,
    error TEXT,
    enqueued_at REAL NOT NULL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS ix_work_queue_ready
    ON work_queue (status, not_before, id);
CREATE TABLE IF NOT EXISTS queue_meta (
    field TEXT PRIMARY KEY,
    value REAL NOT NULL
);
"""


class WorkQueue:
    """A durable lease/retry work queue backed by one SQLite file.

    Args:
        path: the queue database file. Created (with parents) on first
            use; every process sharing the path shares the queue.
        visibility_timeout: seconds a claimed unit stays invisible to
            other workers before it is considered abandoned. Long jobs
            keep their lease alive through :meth:`heartbeat` instead of
            raising this number.
        max_attempts: total deliveries (first claim + redeliveries) a
            unit gets before it is dead-lettered.
        retry_backoff: base of the linear redelivery backoff — a unit
            failed or expired on its N-th attempt becomes claimable
            again ``retry_backoff * N`` seconds later.

    The three tuning knobs are persisted in the queue file when it is
    created, so workers that open the queue later (``None`` arguments)
    inherit the creator's configuration rather than their own defaults.
    """

    #: Lease lifecycle states, in the order of the happy path.
    STATES = WORK_QUEUE_STATES

    def __init__(self, path: str,
                 visibility_timeout: Optional[float] = None,
                 max_attempts: Optional[int] = None,
                 retry_backoff: Optional[float] = None):
        if visibility_timeout is not None and visibility_timeout <= 0:
            raise QueueError("visibility_timeout must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise QueueError("max_attempts must be at least 1")
        if retry_backoff is not None and retry_backoff < 0:
            raise QueueError("retry_backoff must be non-negative")
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._initialize(visibility_timeout, max_attempts, retry_backoff)

    # ------------------------------------------------------------------ #
    # connections and setup
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _connect(self):
        # One short-lived connection per operation: SQLite connections
        # must not cross fork boundaries, and the queue's callers are
        # exactly the processes that fork/spawn freely.
        connection = sqlite3.connect(self.path, timeout=30.0,
                                     isolation_level=None)
        try:
            connection.execute("PRAGMA busy_timeout = 30000")
            yield connection
        finally:
            connection.close()

    def _initialize(self, visibility_timeout, max_attempts, retry_backoff):
        defaults = {"visibility_timeout": 30.0, "max_attempts": 3,
                    "retry_backoff": 0.1}
        requested = {"visibility_timeout": visibility_timeout,
                     "max_attempts": max_attempts,
                     "retry_backoff": retry_backoff}
        with self._connect() as connection:
            # executescript autocommits, so the idempotent DDL runs outside
            # the meta transaction.
            connection.executescript(_SCHEMA)
            connection.execute("BEGIN IMMEDIATE")
            try:
                stored = dict(connection.execute(
                    "SELECT field, value FROM queue_meta"))
                for field, value in requested.items():
                    if value is None:
                        value = stored.get(field, defaults[field])
                    connection.execute(
                        "INSERT OR REPLACE INTO queue_meta (field, value) "
                        "VALUES (?, ?)", (field, float(value)))
                    setattr(self, field, type(defaults[field])(value))
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise

    # ------------------------------------------------------------------ #
    # producing
    # ------------------------------------------------------------------ #
    def put(self, kind: str, unit: dict, key: Optional[str] = None,
            max_attempts: Optional[int] = None) -> str:
        """Enqueue one picklable work unit; returns its key.

        ``key`` defaults to a fresh UUID. Enqueuing a key that already
        exists — whatever its state — is a no-op returning the existing
        key, so producers may re-submit a whole batch after a crash
        without duplicating work ("exactly-once enqueue" by idempotence).
        """
        key = key or uuid.uuid4().hex
        # Validate the document shape against the shared db schema so the
        # queue rows stay interchangeable with `work_queue` documents.
        new_document("work_queue", kind=kind, status="ready", key=key)
        payload = sqlite3.Binary(pickle.dumps(unit))
        limit = int(max_attempts or self.max_attempts)
        with self._connect() as connection:
            connection.execute(
                "INSERT OR IGNORE INTO work_queue "
                "(key, kind, payload, status, max_attempts, enqueued_at) "
                "VALUES (?, ?, ?, 'ready', ?, ?)",
                (key, kind, payload, limit, time.time()))
        return key

    # ------------------------------------------------------------------ #
    # the lease lifecycle
    # ------------------------------------------------------------------ #
    def _sweep_expired(self, connection, now: float) -> None:
        """Requeue or dead-letter every expired lease (tx held)."""
        connection.execute(
            "UPDATE work_queue SET status = 'dead', lease_id = NULL, "
            "worker = NULL, finished_at = ?, "
            "error = COALESCE(error, 'lease expired') "
            "WHERE status = 'leased' AND lease_expires < ? "
            "AND attempts >= max_attempts",
            (now, now))
        connection.execute(
            "UPDATE work_queue SET status = 'ready', lease_id = NULL, "
            "worker = NULL, error = 'lease expired', "
            "not_before = ? + ? * attempts "
            "WHERE status = 'leased' AND lease_expires < ?",
            (now, self.retry_backoff, now))

    def requeue_expired(self) -> None:
        """Sweep expired leases outside a claim (e.g. a waiting parent).

        ``claim`` sweeps automatically; this standalone entry point lets
        a process that only *watches* the queue (the executor's drain
        loop) keep redelivery moving even when no worker is claiming.
        """
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            try:
                self._sweep_expired(connection, time.time())
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise

    def claim(self, worker: str = "") -> Optional[Lease]:
        """Atomically lease the oldest ready unit, or return ``None``.

        The claim also performs the expiry sweep, so abandoned leases are
        redelivered by whichever worker polls next — exactly once, since
        the sweep and the re-claim happen in one transaction.
        """
        now = time.time()
        lease_id = uuid.uuid4().hex
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            try:
                self._sweep_expired(connection, now)
                row = connection.execute(
                    "SELECT id, key, kind, payload, attempts FROM work_queue "
                    "WHERE status = 'ready' AND not_before <= ? "
                    "ORDER BY id LIMIT 1", (now,)).fetchone()
                if row is None:
                    connection.execute("COMMIT")
                    return None
                job_id, key, kind, payload, attempts = row
                expires = now + self.visibility_timeout
                connection.execute(
                    "UPDATE work_queue SET status = 'leased', "
                    "attempts = attempts + 1, lease_id = ?, "
                    "lease_expires = ?, worker = ? WHERE id = ?",
                    (lease_id, expires, worker, job_id))
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        return Lease(job_id=job_id, key=key, kind=kind,
                     unit=pickle.loads(payload), lease_id=lease_id,
                     attempts=attempts + 1, expires_at=expires)

    def heartbeat(self, lease: Lease) -> bool:
        """Extend a live lease by ``visibility_timeout`` from now.

        Returns ``False`` when the lease was lost — it expired and the
        unit was redelivered (or finished) elsewhere. The worker should
        abandon the unit: its eventual ``complete`` would be rejected
        anyway.
        """
        now = time.time()
        with self._connect() as connection:
            updated = connection.execute(
                "UPDATE work_queue SET lease_expires = ? "
                "WHERE id = ? AND lease_id = ? AND status = 'leased'",
                (now + self.visibility_timeout, lease.job_id,
                 lease.lease_id)).rowcount
        if updated:
            lease.expires_at = now + self.visibility_timeout
        return bool(updated)

    def complete(self, lease: Lease, result: object = None) -> bool:
        """Acknowledge a finished unit, storing its picklable result.

        Fenced by the lease id: returns ``False`` (and stores nothing)
        when the lease is stale, so a unit that was redelivered after an
        expiry is counted exactly once no matter how many executions
        eventually report back.
        """
        payload = sqlite3.Binary(pickle.dumps(result))
        with self._connect() as connection:
            updated = connection.execute(
                "UPDATE work_queue SET status = 'done', result = ?, "
                "finished_at = ?, lease_id = NULL, error = NULL "
                "WHERE id = ? AND lease_id = ? AND status = 'leased'",
                (payload, time.time(), lease.job_id, lease.lease_id)
            ).rowcount
        return bool(updated)

    def fail(self, lease: Lease, error: str) -> str:
        """Report a failed execution; returns the unit's new status.

        The unit goes back to ``ready`` behind a linear backoff while
        deliveries remain, to ``dead`` once ``max_attempts`` are spent,
        and the call is ignored (``"stale"``) when the lease was lost.
        """
        now = time.time()
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            try:
                row = connection.execute(
                    "SELECT attempts, max_attempts FROM work_queue "
                    "WHERE id = ? AND lease_id = ? AND status = 'leased'",
                    (lease.job_id, lease.lease_id)).fetchone()
                if row is None:
                    connection.execute("COMMIT")
                    return "stale"
                attempts, max_attempts = row
                if attempts >= max_attempts:
                    connection.execute(
                        "UPDATE work_queue SET status = 'dead', "
                        "lease_id = NULL, worker = NULL, error = ?, "
                        "finished_at = ? WHERE id = ?",
                        (error, now, lease.job_id))
                    status = "dead"
                else:
                    connection.execute(
                        "UPDATE work_queue SET status = 'ready', "
                        "lease_id = NULL, worker = NULL, error = ?, "
                        "not_before = ? + ? * attempts WHERE id = ?",
                        (error, now, self.retry_backoff, lease.job_id))
                    status = "ready"
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        return status

    # ------------------------------------------------------------------ #
    # observing
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[str, int]:
        """``{state: number_of_units}`` with every state present."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT status, COUNT(*) FROM work_queue "
                "GROUP BY status").fetchall()
        counts = {state: 0 for state in self.STATES}
        counts.update(dict(rows))
        return counts

    def unfinished(self, sweep: bool = True) -> int:
        """Units still to be resolved (``ready`` + ``leased``).

        With ``sweep`` (the default) expired leases are requeued first,
        so a parent polling ``unfinished()`` keeps redelivery moving even
        while every worker is dead.
        """
        if sweep:
            self.requeue_expired()
        counts = self.counts()
        return counts["ready"] + counts["leased"]

    def attempts(self, key: str) -> int:
        """Delivery count of one unit (0 = never claimed)."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT attempts FROM work_queue WHERE key = ?",
                (key,)).fetchone()
        if row is None:
            raise QueueError(f"Unknown work unit {key!r}")
        return int(row[0])

    def finished_keys(self) -> List[str]:
        """Keys of every ``done`` unit, in completion-insensitive id order."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key FROM work_queue WHERE status = 'done' "
                "ORDER BY id").fetchall()
        return [row[0] for row in rows]

    def result(self, key: str) -> object:
        """The stored result of one ``done`` unit."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT status, result FROM work_queue WHERE key = ?",
                (key,)).fetchone()
        if row is None:
            raise QueueError(f"Unknown work unit {key!r}")
        status, payload = row
        if status != "done":
            raise QueueError(f"Work unit {key!r} is {status}, not done")
        return pickle.loads(payload)

    def results(self) -> Dict[str, object]:
        """``{key: result}`` over every ``done`` unit."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, result FROM work_queue "
                "WHERE status = 'done'").fetchall()
        return {key: pickle.loads(payload) for key, payload in rows}

    def dead_letters(self) -> List[dict]:
        """Every dead-lettered unit: key, kind, attempts and last error."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, kind, attempts, error FROM work_queue "
                "WHERE status = 'dead' ORDER BY id").fetchall()
        return [{"key": key, "kind": kind, "attempts": attempts,
                 "error": error}
                for key, kind, attempts, error in rows]

    def to_documents(self) -> List[dict]:
        """Every unit as a ``work_queue``-collection document view."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, kind, status, attempts, max_attempts, worker, "
                "error, enqueued_at, finished_at FROM work_queue "
                "ORDER BY id").fetchall()
        return [
            {"key": key, "kind": kind, "status": status,
             "attempts": attempts, "max_attempts": max_attempts,
             "worker": worker, "error": error, "created_at": enqueued_at,
             "finished_at": finished_at}
            for (key, kind, status, attempts, max_attempts, worker, error,
                 enqueued_at, finished_at) in rows
        ]

    def __len__(self) -> int:
        with self._connect() as connection:
            return connection.execute(
                "SELECT COUNT(*) FROM work_queue").fetchone()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WorkQueue(path={self.path!r}, counts={self.counts()})"
