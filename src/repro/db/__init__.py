"""``repro.db``: the persistent knowledge base (paper §3.5, Figure 6)."""

from repro.db.explorer import SintelExplorer
from repro.db.schema import ANNOTATION_TAGS, COLLECTIONS, EVENT_SOURCES, new_document
from repro.db.store import Collection, DocumentStore

__all__ = [
    "DocumentStore",
    "Collection",
    "SintelExplorer",
    "COLLECTIONS",
    "EVENT_SOURCES",
    "ANNOTATION_TAGS",
    "new_document",
]
