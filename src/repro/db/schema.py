"""The knowledge-base schema (Figure 6 of the paper).

The schema mirrors the entities and relationships shown in the paper's
high-level database diagram:

* machine-generated entities: ``Dataset`` → ``Signal``, ``Template`` →
  ``Pipeline``, ``Experiment`` → ``Datarun`` → ``Signalrun`` → ``Event``;
* human-generated entities: ``Annotation`` and ``Interaction`` attached to
  events (and events may also be created by humans);
* ``Event`` carries a ``source`` field distinguishing machine, human, or
  both.

Every entity is stored as a document in its own collection; this module
defines the collection names, the required fields, and small helpers that
validate documents before insertion.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.exceptions import DatabaseError

__all__ = ["COLLECTIONS", "EVENT_SOURCES", "ANNOTATION_TAGS",
           "WORK_QUEUE_STATES", "TENANT_STATUSES",
           "validate_document", "new_document"]

#: Collection name -> required fields (besides ``_id`` and ``created_at``).
COLLECTIONS: Dict[str, List[str]] = {
    "datasets": ["name"],
    "signals": ["name", "dataset_id"],
    "templates": ["name", "spec"],
    "pipelines": ["name", "template_id", "hyperparameters"],
    "experiments": ["name", "project"],
    "dataruns": ["experiment_id", "pipeline_id"],
    "signalruns": ["datarun_id", "signal_id", "status"],
    "events": ["signalrun_id", "signal_id", "start_time", "stop_time", "source"],
    "annotations": ["event_id", "user", "tag"],
    "interactions": ["event_id", "user", "action"],
    "comments": ["event_id", "user", "text"],
    # Streaming sessions (live ingestion API): one document per opened
    # stream; its emitted anomalies are stored as events whose
    # ``signalrun_id`` is the stream document id.
    "streams": ["pipeline", "status"],
    # API gateway tenants: one document per provisioned tenant. Only a
    # salted hash of the API key is stored; the cleartext key is returned
    # exactly once at provisioning time (see repro.api.tenants).
    "tenants": ["name", "key_hash", "status"],
    # Distributed work queue (fleet tier): one document per durable work
    # unit. The authoritative store is the SQLite file behind
    # :class:`repro.distributed.queue.WorkQueue` (document views come
    # from ``WorkQueue.to_documents``); this entry pins the shared
    # document shape and the allowed lease states.
    "work_queue": ["key", "kind", "status"],
}

#: Allowed values of the ``source`` field on events (Figure 6 legend).
EVENT_SOURCES = ("machine", "human", "both")

#: Lease lifecycle states of a distributed work unit: ``ready`` (claimable),
#: ``leased`` (invisible under a visibility timeout), ``done`` (result
#: stored), ``dead`` (retries exhausted — the dead-letter state).
WORK_QUEUE_STATES = ("ready", "leased", "done", "dead")

#: Lifecycle states of an API tenant: ``active`` keys authenticate,
#: ``revoked`` keys are refused at the gateway.
TENANT_STATUSES = ("active", "revoked")

#: Tag taxonomy used in the real-world study (Figure 8b / Table 4).
ANNOTATION_TAGS = ("normal", "problematic", "investigate", "anomaly", "eclipse")


def validate_document(collection: str, document: dict) -> None:
    """Raise :class:`DatabaseError` if the document misses required fields."""
    if collection not in COLLECTIONS:
        raise DatabaseError(
            f"Unknown collection {collection!r}. Known: {sorted(COLLECTIONS)}"
        )
    missing = [field for field in COLLECTIONS[collection] if field not in document]
    if missing:
        raise DatabaseError(
            f"Document for {collection!r} is missing required fields: {missing}"
        )
    if collection == "events" and document.get("source") not in EVENT_SOURCES:
        raise DatabaseError(
            f"Event source must be one of {EVENT_SOURCES}, "
            f"got {document.get('source')!r}"
        )
    if collection == "events" and document["stop_time"] < document["start_time"]:
        raise DatabaseError("Event stop_time must not precede start_time")
    if collection == "tenants" \
            and document.get("status") not in TENANT_STATUSES:
        raise DatabaseError(
            f"Tenant status must be one of {TENANT_STATUSES}, "
            f"got {document.get('status')!r}"
        )
    if collection == "work_queue" \
            and document.get("status") not in WORK_QUEUE_STATES:
        raise DatabaseError(
            f"Work-queue status must be one of {WORK_QUEUE_STATES}, "
            f"got {document.get('status')!r}"
        )


def new_document(collection: str, **fields) -> dict:
    """Build a validated document with a creation timestamp."""
    document = dict(fields)
    document.setdefault("created_at", time.time())
    validate_document(collection, document)
    return document
