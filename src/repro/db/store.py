"""An in-process document store with a MongoDB-like query subset.

The paper stores the framework's persistent state in MongoDB (§3.5). To
keep the reproduction dependency-free and runnable offline, this module
implements the subset of MongoDB behaviour the framework relies on:
named collections of JSON-like documents, automatic ``_id`` assignment,
``insert`` / ``find`` / ``find_one`` / ``update`` / ``delete`` operations
with equality and operator filters (``$gt``, ``$gte``, ``$lt``, ``$lte``,
``$ne``, ``$in``), sorting, and optional JSON-file persistence.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import threading
from typing import Dict, Iterable, List, Optional

from repro.exceptions import DatabaseError, DuplicateKeyError, NotFoundError

__all__ = ["Collection", "DocumentStore"]

def _compare(value, bound, operator) -> bool:
    """Order comparison that treats incomparable types as a non-match."""
    if value is None:
        return False
    try:
        return operator(value, bound)
    except TypeError:
        return False


_OPERATORS = {
    "$gt": lambda value, bound: _compare(value, bound, lambda a, b: a > b),
    "$gte": lambda value, bound: _compare(value, bound, lambda a, b: a >= b),
    "$lt": lambda value, bound: _compare(value, bound, lambda a, b: a < b),
    "$lte": lambda value, bound: _compare(value, bound, lambda a, b: a <= b),
    "$ne": lambda value, bound: value != bound,
    "$in": lambda value, bound: value in bound,
}


def _matches(document: dict, query: Optional[dict]) -> bool:
    """Whether ``document`` satisfies the Mongo-style ``query``."""
    if not query:
        return True
    for field, condition in query.items():
        value = document.get(field)
        is_operator_query = isinstance(condition, dict) and any(
            isinstance(key, str) and key.startswith("$") for key in condition
        )
        if is_operator_query:
            for operator, bound in condition.items():
                if operator not in _OPERATORS:
                    raise DatabaseError(f"Unsupported query operator {operator!r}")
                if not _OPERATORS[operator](value, bound):
                    return False
        elif value != condition:
            return False
    return True


class Collection:
    """A named collection of documents."""

    def __init__(self, name: str, counter: itertools.count, lock: threading.RLock):
        self.name = name
        self._documents: Dict[str, dict] = {}
        self._counter = counter
        self._lock = lock
        self._unique_fields: List[str] = []

    def ensure_unique(self, field: str) -> None:
        """Enforce a unique constraint on ``field`` for future inserts."""
        if field not in self._unique_fields:
            self._unique_fields.append(field)

    # ------------------------------------------------------------------ #
    def insert(self, document: dict) -> str:
        """Insert a document and return its ``_id``."""
        if not isinstance(document, dict):
            raise DatabaseError("Documents must be dictionaries")
        with self._lock:
            for field in self._unique_fields:
                value = document.get(field)
                if value is not None and any(
                    existing.get(field) == value for existing in self._documents.values()
                ):
                    raise DuplicateKeyError(
                        f"{self.name}: a document with {field}={value!r} already exists"
                    )
            document = copy.deepcopy(document)
            doc_id = document.get("_id") or f"{self.name}-{next(self._counter)}"
            if doc_id in self._documents:
                raise DuplicateKeyError(f"{self.name}: duplicate _id {doc_id!r}")
            document["_id"] = doc_id
            self._documents[doc_id] = document
            return doc_id

    def insert_many(self, documents: Iterable[dict]) -> List[str]:
        """Insert several documents, returning their ids."""
        return [self.insert(document) for document in documents]

    def find(self, query: Optional[dict] = None, sort: Optional[str] = None,
             reverse: bool = False, limit: Optional[int] = None) -> List[dict]:
        """Return copies of every document matching ``query``."""
        with self._lock:
            results = [
                copy.deepcopy(document)
                for document in self._documents.values()
                if _matches(document, query)
            ]
        if sort is not None:
            results.sort(key=lambda doc: (doc.get(sort) is None, doc.get(sort)),
                         reverse=reverse)
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: Optional[dict] = None) -> Optional[dict]:
        """Return the first matching document or ``None``."""
        results = self.find(query, limit=1)
        return results[0] if results else None

    def get(self, doc_id: str) -> dict:
        """Return the document with the given ``_id`` (raises if missing)."""
        with self._lock:
            if doc_id not in self._documents:
                raise NotFoundError(f"{self.name}: no document with _id {doc_id!r}")
            return copy.deepcopy(self._documents[doc_id])

    def update(self, query: dict, changes: dict) -> int:
        """Apply ``changes`` to every matching document; return the count."""
        if "_id" in changes:
            raise DatabaseError("The _id field cannot be updated")
        count = 0
        with self._lock:
            for document in self._documents.values():
                if _matches(document, query):
                    document.update(copy.deepcopy(changes))
                    count += 1
        return count

    def delete(self, query: dict) -> int:
        """Delete every matching document; return the count."""
        with self._lock:
            to_delete = [
                doc_id for doc_id, document in self._documents.items()
                if _matches(document, query)
            ]
            for doc_id in to_delete:
                del self._documents[doc_id]
        return len(to_delete)

    def count(self, query: Optional[dict] = None) -> int:
        """Number of documents matching ``query``."""
        return len(self.find(query))

    def __len__(self) -> int:
        return len(self._documents)

    # ------------------------------------------------------------------ #
    def to_list(self) -> List[dict]:
        """Every document, for serialization."""
        with self._lock:
            return [copy.deepcopy(document) for document in self._documents.values()]

    def load_documents(self, documents: Iterable[dict]) -> None:
        """Bulk-load documents (used when restoring from disk)."""
        with self._lock:
            for document in documents:
                self._documents[document["_id"]] = copy.deepcopy(document)


class DocumentStore:
    """A database: a set of named collections with optional JSON persistence."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._collections: Dict[str, Collection] = {}
        self._counter = itertools.count(1)
        self._lock = threading.RLock()
        if path and os.path.exists(path):
            self._load()

    def collection(self, name: str) -> Collection:
        """Get (or lazily create) a collection."""
        with self._lock:
            if name not in self._collections:
                self._collections[name] = Collection(name, self._counter, self._lock)
            return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def list_collections(self) -> List[str]:
        """Sorted names of the existing collections."""
        return sorted(self._collections)

    def drop(self) -> None:
        """Remove every collection (and the persisted file, if any)."""
        with self._lock:
            self._collections.clear()
            if self.path and os.path.exists(self.path):
                os.remove(self.path)

    # ------------------------------------------------------------------ #
    def work_queue(self, path: Optional[str] = None, **options):
        """A durable :class:`~repro.distributed.queue.WorkQueue` sibling.

        The queue's authoritative state lives in its own SQLite file —
        lease claims need multi-process atomicity this JSON store cannot
        provide — but it is addressed *through* the store so persistent
        deployments keep one data directory: with no explicit ``path``
        the queue lands next to the store's JSON file as
        ``<store>.queue.sqlite``. Document views of the queue rows
        (``WorkQueue.to_documents``) follow the ``work_queue`` collection
        schema; load them into ``self["work_queue"]`` to snapshot/query
        queue state alongside the other collections.
        """
        from repro.distributed.queue import WorkQueue

        if path is None:
            if not self.path:
                raise DatabaseError(
                    "work_queue() needs an explicit path when the store "
                    "itself is not file-backed"
                )
            path = os.path.splitext(self.path)[0] + ".queue.sqlite"
        return WorkQueue(path, **options)

    def snapshot_work_queue(self, queue) -> int:
        """Mirror a queue's current rows into the ``work_queue`` collection.

        Replaces the collection contents with the queue's document views
        (validated against the schema) and returns how many were loaded —
        the hook the explorer/API layers use to expose queue state
        through the ordinary document query surface.
        """
        from repro.db.schema import validate_document

        documents = queue.to_documents()
        collection = self.collection("work_queue")
        with self._lock:
            collection._documents.clear()
            for index, document in enumerate(documents):
                validate_document("work_queue", document)
                document = dict(document)
                document.setdefault("_id", f"work_queue-{index + 1}")
                collection.load_documents([document])
        return len(documents)

    # ------------------------------------------------------------------ #
    def save(self, path: Optional[str] = None) -> None:
        """Persist every collection to a JSON file."""
        path = path or self.path
        if not path:
            raise DatabaseError("No path configured for persistence")
        payload = {
            name: collection.to_list()
            for name, collection in self._collections.items()
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)

    def _load(self) -> None:
        with open(self.path) as handle:
            payload = json.load(handle)
        for name, documents in payload.items():
            self.collection(name).load_documents(documents)
