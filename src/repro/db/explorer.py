"""High-level record API over the knowledge base (the "SintelExplorer").

The explorer wraps the document store with domain operations matching the
anomaly-detection workflow: registering datasets/signals/templates,
recording experiments, dataruns and signalruns, storing detected events,
and collecting human annotations, interactions and comments. This is the
persistence layer that the REST API and the HIL subsystem build on.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.data.signal import Dataset, Signal
from repro.db.schema import ANNOTATION_TAGS, EVENT_SOURCES, new_document
from repro.db.store import DocumentStore
from repro.exceptions import DatabaseError, NotFoundError

__all__ = ["SintelExplorer"]


class SintelExplorer:
    """Domain-level operations over the Figure 6 schema."""

    def __init__(self, store: Optional[DocumentStore] = None,
                 path: Optional[str] = None):
        self.store = store or DocumentStore(path=path)
        self.store.collection("datasets").ensure_unique("name")
        self.store.collection("templates").ensure_unique("name")
        self.store.collection("experiments").ensure_unique("name")

    # ------------------------------------------------------------------ #
    # datasets and signals
    # ------------------------------------------------------------------ #
    def add_dataset(self, name: str, **metadata) -> str:
        """Register a dataset and return its id."""
        document = new_document("datasets", name=name, metadata=metadata)
        return self.store["datasets"].insert(document)

    def add_signal(self, dataset_id: str, signal: Signal) -> str:
        """Register a signal belonging to ``dataset_id``."""
        self.store["datasets"].get(dataset_id)
        document = new_document(
            "signals",
            name=signal.name,
            dataset_id=dataset_id,
            length=len(signal),
            n_channels=signal.n_channels,
            start_time=int(signal.timestamps[0]) if len(signal) else None,
            stop_time=int(signal.timestamps[-1]) if len(signal) else None,
            metadata=dict(signal.metadata),
        )
        return self.store["signals"].insert(document)

    def register_dataset(self, dataset: Dataset) -> str:
        """Register a dataset object together with all of its signals."""
        dataset_id = self.add_dataset(dataset.name, **dataset.metadata)
        for signal in dataset:
            self.add_signal(dataset_id, signal)
        return dataset_id

    def get_signals(self, dataset_id: Optional[str] = None) -> List[dict]:
        """List signals, optionally restricted to one dataset."""
        query = {"dataset_id": dataset_id} if dataset_id else None
        return self.store["signals"].find(query, sort="name")

    # ------------------------------------------------------------------ #
    # templates and pipelines
    # ------------------------------------------------------------------ #
    def add_template(self, name: str, spec: dict) -> str:
        """Register a pipeline template spec."""
        document = new_document("templates", name=name, spec=spec)
        return self.store["templates"].insert(document)

    def add_pipeline(self, name: str, template_id: str,
                     hyperparameters: Optional[dict] = None) -> str:
        """Register a configured pipeline derived from a template."""
        self.store["templates"].get(template_id)
        document = new_document(
            "pipelines",
            name=name,
            template_id=template_id,
            hyperparameters=hyperparameters or {},
        )
        return self.store["pipelines"].insert(document)

    # ------------------------------------------------------------------ #
    # experiments, dataruns, signalruns
    # ------------------------------------------------------------------ #
    def add_experiment(self, name: str, project: str = "default",
                       **metadata) -> str:
        """Register an experiment."""
        document = new_document("experiments", name=name, project=project,
                                metadata=metadata)
        return self.store["experiments"].insert(document)

    def add_datarun(self, experiment_id: str, pipeline_id: str) -> str:
        """Record one pipeline execution batch within an experiment."""
        self.store["experiments"].get(experiment_id)
        self.store["pipelines"].get(pipeline_id)
        document = new_document(
            "dataruns",
            experiment_id=experiment_id,
            pipeline_id=pipeline_id,
            status="running",
            start_time=time.time(),
        )
        return self.store["dataruns"].insert(document)

    def add_signalrun(self, datarun_id: str, signal_id: str,
                      status: str = "running") -> str:
        """Record the execution of one pipeline over one signal."""
        self.store["dataruns"].get(datarun_id)
        document = new_document(
            "signalruns",
            datarun_id=datarun_id,
            signal_id=signal_id,
            status=status,
            start_time=time.time(),
        )
        return self.store["signalruns"].insert(document)

    def end_signalrun(self, signalrun_id: str, status: str = "done",
                      **metrics) -> None:
        """Mark a signalrun as finished and attach metrics."""
        self.store["signalruns"].get(signalrun_id)
        self.store["signalruns"].update(
            {"_id": signalrun_id},
            {"status": status, "stop_time": time.time(), "metrics": metrics},
        )

    def end_datarun(self, datarun_id: str, status: str = "done") -> None:
        """Mark a datarun as finished."""
        self.store["dataruns"].get(datarun_id)
        self.store["dataruns"].update(
            {"_id": datarun_id}, {"status": status, "stop_time": time.time()}
        )

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def add_event(self, signalrun_id: str, signal_id: str, start_time: float,
                  stop_time: float, severity: float = 0.0,
                  source: str = "machine") -> str:
        """Store a detected (or manually created) anomalous event."""
        if source not in EVENT_SOURCES:
            raise DatabaseError(f"Unknown event source {source!r}")
        document = new_document(
            "events",
            signalrun_id=signalrun_id,
            signal_id=signal_id,
            start_time=float(start_time),
            stop_time=float(stop_time),
            severity=float(severity),
            source=source,
        )
        return self.store["events"].insert(document)

    def add_detected_events(self, signalrun_id: str, signal_id: str,
                            anomalies) -> List[str]:
        """Store a pipeline's detected anomalies as machine events."""
        event_ids = []
        for anomaly in anomalies:
            start, end = float(anomaly[0]), float(anomaly[1])
            severity = float(anomaly[2]) if len(anomaly) > 2 else 0.0
            event_ids.append(
                self.add_event(signalrun_id, signal_id, start, end, severity,
                               source="machine")
            )
        return event_ids

    def get_events(self, signal_id: Optional[str] = None,
                   source: Optional[str] = None) -> List[dict]:
        """List events, optionally filtered by signal and source."""
        query = {}
        if signal_id:
            query["signal_id"] = signal_id
        if source:
            query["source"] = source
        return self.store["events"].find(query or None, sort="start_time")

    def update_event(self, event_id: str, start_time: Optional[float] = None,
                     stop_time: Optional[float] = None) -> None:
        """Modify an event's boundaries (human interaction)."""
        event = self.store["events"].get(event_id)
        changes = {}
        if start_time is not None:
            changes["start_time"] = float(start_time)
        if stop_time is not None:
            changes["stop_time"] = float(stop_time)
        if changes:
            new_start = changes.get("start_time", event["start_time"])
            new_stop = changes.get("stop_time", event["stop_time"])
            if new_stop < new_start:
                raise DatabaseError("Event stop_time must not precede start_time")
            changes["source"] = "both" if event["source"] == "machine" else event["source"]
            self.store["events"].update({"_id": event_id}, changes)

    def delete_event(self, event_id: str) -> None:
        """Remove an event (and its annotations, interactions, comments)."""
        if not self.store["events"].delete({"_id": event_id}):
            raise NotFoundError(f"No event with id {event_id!r}")
        self.store["annotations"].delete({"event_id": event_id})
        self.store["interactions"].delete({"event_id": event_id})
        self.store["comments"].delete({"event_id": event_id})

    # ------------------------------------------------------------------ #
    # streaming sessions
    # ------------------------------------------------------------------ #
    def add_stream(self, pipeline: str, signal_id: Optional[str] = None,
                   **metadata) -> str:
        """Register a live stream session over ``pipeline``."""
        document = new_document(
            "streams",
            pipeline=pipeline,
            signal_id=signal_id,
            status="open",
            start_time=time.time(),
            metadata=metadata,
        )
        return self.store["streams"].insert(document)

    def end_stream(self, stream_id: str, status: str = "closed",
                   **stats) -> None:
        """Mark a stream session as finished and attach final statistics."""
        self.store["streams"].get(stream_id)
        self.store["streams"].update(
            {"_id": stream_id},
            {"status": status, "stop_time": time.time(), "stats": stats},
        )

    def add_stream_event(self, stream_id: str, event) -> str:
        """Persist one closed :class:`~repro.core.stream.StreamEvent`.

        The stream document stands in for the signalrun (Figure 6): the
        event keeps its stable stream id in the record so pollers can
        correlate live and stored views.
        """
        stream = self.store["streams"].get(stream_id)
        document = new_document(
            "events",
            signalrun_id=stream_id,
            signal_id=stream.get("signal_id") or stream_id,
            start_time=float(event.start),
            stop_time=float(event.end),
            severity=float(event.severity),
            source="machine",
            stream_event_id=event.event_id,
        )
        return self.store["events"].insert(document)

    # ------------------------------------------------------------------ #
    # human feedback
    # ------------------------------------------------------------------ #
    def add_annotation(self, event_id: str, user: str, tag: str,
                       comment: str = "") -> str:
        """Attach an expert annotation (tag) to an event."""
        self.store["events"].get(event_id)
        if tag not in ANNOTATION_TAGS:
            raise DatabaseError(
                f"Unknown annotation tag {tag!r}; allowed: {ANNOTATION_TAGS}"
            )
        document = new_document("annotations", event_id=event_id, user=user,
                                tag=tag, comment=comment)
        annotation_id = self.store["annotations"].insert(document)
        self.add_interaction(event_id, user, "annotate", {"tag": tag})
        return annotation_id

    def add_interaction(self, event_id: str, user: str, action: str,
                        details: Optional[dict] = None) -> str:
        """Log a user interaction with an event (view, modify, annotate...)."""
        document = new_document("interactions", event_id=event_id, user=user,
                                action=action, details=details or {})
        return self.store["interactions"].insert(document)

    def add_comment(self, event_id: str, user: str, text: str) -> str:
        """Add a free-text discussion comment to an event."""
        self.store["events"].get(event_id)
        document = new_document("comments", event_id=event_id, user=user, text=text)
        return self.store["comments"].insert(document)

    def get_annotations(self, event_id: Optional[str] = None,
                        tag: Optional[str] = None) -> List[dict]:
        """List annotations, optionally filtered."""
        query = {}
        if event_id:
            query["event_id"] = event_id
        if tag:
            query["tag"] = tag
        return self.store["annotations"].find(query or None, sort="created_at")

    def get_annotated_intervals(self, signal_id: str, tags=("anomaly", "problematic")
                                ) -> List[tuple]:
        """Return the intervals of events annotated with the given tags.

        This is what the feedback loop consumes: confirmed anomalous events
        become the labeled training intervals of the semi-supervised pipeline.
        """
        intervals = []
        for event in self.get_events(signal_id=signal_id):
            annotations = self.get_annotations(event_id=event["_id"])
            if any(annotation["tag"] in tags for annotation in annotations):
                intervals.append((event["start_time"], event["stop_time"]))
        return sorted(intervals)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Document counts per collection — a quick health check."""
        return {
            name: len(self.store[name])
            for name in sorted(self.store.list_collections())
        }
