"""Contextual (interval-based) evaluation metrics.

The paper defines two methods for comparing detected anomalies against
ground truth without assuming regular sampling (§2.3):

* **Weighted segment** (Algorithm 1) — partition the timeline by every
  interval edge and weight each partition's confusion-matrix contribution
  by its duration. Strict; equivalent to sample-based scoring for regularly
  sampled signals.
* **Overlapping segment** (Algorithm 2) — reward the detector if it alerts
  on any part of a true anomaly; count unmatched predictions as false
  positives. Lenient; inspired by Hundman et al.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "weighted_segment_confusion_matrix",
    "overlapping_segment_confusion_matrix",
    "weighted_segment_scores",
    "overlapping_segment_scores",
    "contextual_confusion_matrix",
    "contextual_f1_score",
    "contextual_precision",
    "contextual_recall",
]

Interval = Tuple[float, float]


def _normalize(intervals: Optional[Iterable]) -> List[Interval]:
    """Normalize intervals to a sorted list of ``(start, end)`` floats."""
    normalized = []
    for interval in intervals or []:
        start, end = float(interval[0]), float(interval[1])
        if end < start:
            raise ValueError(f"Interval end before start: {(start, end)}")
        normalized.append((start, end))
    return sorted(normalized)


def _covered(point_start: float, point_end: float,
             intervals: Sequence[Interval]) -> bool:
    """Whether the segment ``[point_start, point_end]`` overlaps any interval."""
    for start, end in intervals:
        if point_start < end and point_end > start:
            return True
        if start >= point_end:
            break
    return False


def weighted_segment_confusion_matrix(expected, observed,
                                      data_range: Optional[Interval] = None):
    """Algorithm 1: duration-weighted confusion matrix.

    Args:
        expected: ground-truth anomalies as ``(start, end)`` pairs.
        observed: predicted anomalies as ``(start, end[, severity])`` rows.
        data_range: optional ``(start, end)`` of the full signal, so that the
            leading/trailing normal segments contribute true negatives.

    Returns:
        Tuple ``(tp, fp, fn, tn)`` of segment durations.
    """
    expected = _normalize(expected)
    observed = _normalize((row[0], row[1]) for row in observed or [])

    edges = set()
    for start, end in expected + observed:
        edges.add(start)
        edges.add(end)
    if data_range is not None:
        edges.add(float(data_range[0]))
        edges.add(float(data_range[1]))
    edges = sorted(edges)

    if len(edges) < 2:
        return 0.0, 0.0, 0.0, 0.0

    tp = fp = fn = tn = 0.0
    for left, right in zip(edges[:-1], edges[1:]):
        weight = right - left
        if weight <= 0:
            continue
        in_truth = _covered(left, right, expected)
        in_predicted = _covered(left, right, observed)
        if in_truth and in_predicted:
            tp += weight
        elif in_truth and not in_predicted:
            fn += weight
        elif not in_truth and in_predicted:
            fp += weight
        else:
            tn += weight
    return tp, fp, fn, tn


def overlapping_segment_confusion_matrix(expected, observed):
    """Algorithm 2: event-level confusion counts ``(tp, fp, fn)``.

    Every ground-truth anomaly that overlaps at least one prediction counts
    as one true positive; otherwise it is a false negative. Predictions that
    overlap no ground-truth anomaly are false positives.
    """
    expected = _normalize(expected)
    observed = _normalize((row[0], row[1]) for row in observed or [])

    tp = 0
    fn = 0
    matched_predictions = set()
    for truth in expected:
        overlap_found = False
        for i, prediction in enumerate(observed):
            if truth[0] <= prediction[1] and truth[1] >= prediction[0]:
                overlap_found = True
                matched_predictions.add(i)
        if overlap_found:
            tp += 1
        else:
            fn += 1

    fp = len(observed) - len(matched_predictions)
    return tp, fp, fn


def _scores_from_counts(tp: float, fp: float, fn: float) -> dict:
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def weighted_segment_scores(expected, observed,
                            data_range: Optional[Interval] = None) -> dict:
    """Precision/recall/F1 under the weighted segment method."""
    tp, fp, fn, tn = weighted_segment_confusion_matrix(expected, observed, data_range)
    scores = _scores_from_counts(tp, fp, fn)
    total = tp + fp + fn + tn
    scores["accuracy"] = (tp + tn) / total if total > 0 else 0.0
    return scores


def overlapping_segment_scores(expected, observed) -> dict:
    """Precision/recall/F1 under the overlapping segment method."""
    tp, fp, fn = overlapping_segment_confusion_matrix(expected, observed)
    return _scores_from_counts(tp, fp, fn)


_METHODS = {
    "weighted": weighted_segment_scores,
    "overlapping": overlapping_segment_scores,
}


def contextual_confusion_matrix(expected, observed, method: str = "overlapping",
                                data_range: Optional[Interval] = None):
    """Return the confusion counts for the requested method."""
    if method == "weighted":
        return weighted_segment_confusion_matrix(expected, observed, data_range)
    if method == "overlapping":
        return overlapping_segment_confusion_matrix(expected, observed)
    raise ValueError(f"Unknown evaluation method {method!r}")


def _score(expected, observed, method, key, data_range=None) -> float:
    if method not in _METHODS:
        raise ValueError(f"Unknown evaluation method {method!r}")
    if method == "weighted":
        return _METHODS[method](expected, observed, data_range)[key]
    return _METHODS[method](expected, observed)[key]


def contextual_f1_score(expected, observed, method: str = "overlapping",
                        data_range=None) -> float:
    """Contextual F1 score under the requested method."""
    return _score(expected, observed, method, "f1", data_range)


def contextual_precision(expected, observed, method: str = "overlapping",
                         data_range=None) -> float:
    """Contextual precision under the requested method."""
    return _score(expected, observed, method, "precision", data_range)


def contextual_recall(expected, observed, method: str = "overlapping",
                      data_range=None) -> float:
    """Contextual recall under the requested method."""
    return _score(expected, observed, method, "recall", data_range)
