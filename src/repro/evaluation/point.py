"""Point-wise (sample-based) classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = [
    "point_confusion_matrix",
    "point_precision",
    "point_recall",
    "point_f1_score",
    "point_accuracy",
    "intervals_to_labels",
]


def intervals_to_labels(intervals, index) -> np.ndarray:
    """Convert ``(start, end)`` intervals into 0/1 labels over ``index``."""
    index = np.asarray(index)
    labels = np.zeros(len(index), dtype=int)
    for interval in intervals or []:
        start, end = float(interval[0]), float(interval[1])
        labels[(index >= start) & (index <= end)] = 1
    return labels


def point_confusion_matrix(y_true, y_pred):
    """Return ``(tp, fp, fn, tn)`` counts for binary label arrays."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    return tp, fp, fn, tn


def point_precision(y_true, y_pred) -> float:
    """Sample-based precision."""
    tp, fp, _, _ = point_confusion_matrix(y_true, y_pred)
    return tp / (tp + fp) if (tp + fp) else 0.0


def point_recall(y_true, y_pred) -> float:
    """Sample-based recall."""
    tp, _, fn, _ = point_confusion_matrix(y_true, y_pred)
    return tp / (tp + fn) if (tp + fn) else 0.0


def point_f1_score(y_true, y_pred) -> float:
    """Sample-based F1 score."""
    precision = point_precision(y_true, y_pred)
    recall = point_recall(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def point_accuracy(y_true, y_pred) -> float:
    """Sample-based accuracy."""
    tp, fp, fn, tn = point_confusion_matrix(y_true, y_pred)
    total = tp + fp + fn + tn
    return (tp + tn) / total if total else 0.0
