"""Per-class evaluation against the labeled anomaly taxonomy.

The synthetic :class:`~repro.data.synthetic.WorkloadGenerator` labels every
injected anomaly with its class (``point`` / ``contextual`` / ``collective``
/ ``changepoint``) and the affected channels. These metrics break the
overlapping-segment confusion matrix down by class, so a detector's blind
spots (e.g. reconstruction pipelines missing contextual anomalies) are
visible — and gateable — per class instead of being averaged away.

Labels are dictionaries ``{"start", "end", "class", "channels"}`` as stored
under ``Signal.metadata["anomaly_labels"]``; predictions are the usual
``(start, end[, severity[, channel]])`` rows emitted by the pipelines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "per_class_confusion",
    "per_class_scores",
    "attribution_accuracy",
    "merge_class_scores",
]


def _prediction_intervals(observed) -> List[Tuple[float, float]]:
    return [(float(row[0]), float(row[1])) for row in observed or []]


def per_class_confusion(labels: Iterable[dict],
                        observed) -> Tuple[Dict[str, dict], set]:
    """Overlap-match labeled truths against predictions, split by class.

    Follows Algorithm 2 (overlapping segment): a truth counts as detected
    when any prediction overlaps it; a prediction counts as matched when it
    overlaps any truth. Returns ``(per_class, matched)`` where ``per_class``
    maps class name to ``{"tp": int, "fn": int}`` and ``matched`` is the set
    of prediction indices that overlap at least one truth (for precision).
    """
    predictions = _prediction_intervals(observed)
    per_class: Dict[str, dict] = {}
    matched: set = set()
    for label in labels or []:
        start, end = float(label["start"]), float(label["end"])
        counts = per_class.setdefault(label["class"], {"tp": 0, "fn": 0})
        hit = False
        for i, (p_start, p_end) in enumerate(predictions):
            if start <= p_end and end >= p_start:
                hit = True
                matched.add(i)
        counts["tp" if hit else "fn"] += 1
    return per_class, matched


def per_class_scores(labels: Iterable[dict], observed) -> dict:
    """Per-class recall plus overall precision/recall/F1.

    Returns::

        {
            "classes": {cls: {"recall", "support", "tp", "fn"}},
            "precision": float,   # matched predictions / all predictions
            "recall": float,      # detected truths / all truths
            "f1": float,
            "n_predicted": int,
        }
    """
    per_class, matched = per_class_confusion(labels, observed)
    n_predicted = len(_prediction_intervals(observed))

    classes = {}
    tp_total = fn_total = 0
    for cls, counts in sorted(per_class.items()):
        support = counts["tp"] + counts["fn"]
        classes[cls] = {
            "tp": counts["tp"],
            "fn": counts["fn"],
            "support": support,
            "recall": counts["tp"] / support if support else 0.0,
        }
        tp_total += counts["tp"]
        fn_total += counts["fn"]

    precision = len(matched) / n_predicted if n_predicted else 0.0
    recall = tp_total / (tp_total + fn_total) if (tp_total + fn_total) else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return {
        "classes": classes,
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "n_predicted": n_predicted,
    }


def attribution_accuracy(labels: Iterable[dict], observed) -> dict:
    """Score channel attribution of multivariate events against the labels.

    For every prediction carrying a 4th (channel) column that overlaps a
    labeled truth, the attribution is correct when the attributed channel is
    among the label's affected channels. Predictions without a channel
    column or without an overlapping truth are skipped.

    Returns ``{"correct": int, "total": int, "accuracy": float}``.
    """
    labels = list(labels or [])
    correct = total = 0
    for row in observed or []:
        if len(row) < 4:
            continue
        start, end, channel = float(row[0]), float(row[1]), int(row[3])
        for label in labels:
            if float(label["start"]) <= end and float(label["end"]) >= start:
                total += 1
                if channel in label.get("channels", []):
                    correct += 1
                break
    return {
        "correct": correct,
        "total": total,
        "accuracy": correct / total if total else 0.0,
    }


def merge_class_scores(scores: Sequence[dict]) -> dict:
    """Aggregate :func:`per_class_scores` results across many signals.

    Counts (tp/fn/support/n_predicted and the matched-prediction count
    implied by ``precision * n_predicted``) are summed before the ratios
    are recomputed, so the merge is exact rather than an average of
    averages.
    """
    classes: Dict[str, dict] = {}
    matched_total = 0.0
    n_predicted = 0
    for score in scores:
        for cls, counts in score["classes"].items():
            merged = classes.setdefault(cls, {"tp": 0, "fn": 0})
            merged["tp"] += counts["tp"]
            merged["fn"] += counts["fn"]
        matched_total += score["precision"] * score["n_predicted"]
        n_predicted += score["n_predicted"]

    tp_total = fn_total = 0
    for cls, counts in classes.items():
        support = counts["tp"] + counts["fn"]
        counts["support"] = support
        counts["recall"] = counts["tp"] / support if support else 0.0
        tp_total += counts["tp"]
        fn_total += counts["fn"]

    precision = matched_total / n_predicted if n_predicted else 0.0
    recall = tp_total / (tp_total + fn_total) if (tp_total + fn_total) else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return {
        "classes": {cls: classes[cls] for cls in sorted(classes)},
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "n_predicted": n_predicted,
    }
