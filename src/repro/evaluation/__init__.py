"""``repro.evaluation``: pipeline evaluation metrics (paper §2.3)."""

from repro.evaluation.classed import (
    attribution_accuracy,
    merge_class_scores,
    per_class_confusion,
    per_class_scores,
)
from repro.evaluation.contextual import (
    contextual_confusion_matrix,
    contextual_f1_score,
    contextual_precision,
    contextual_recall,
    overlapping_segment_confusion_matrix,
    overlapping_segment_scores,
    weighted_segment_confusion_matrix,
    weighted_segment_scores,
)
from repro.evaluation.point import (
    intervals_to_labels,
    point_accuracy,
    point_confusion_matrix,
    point_f1_score,
    point_precision,
    point_recall,
)
from repro.evaluation.regression import (
    REGRESSION_METRICS,
    mae,
    mape,
    mse,
    r2_score,
    rmse,
)

__all__ = [
    "weighted_segment_confusion_matrix",
    "overlapping_segment_confusion_matrix",
    "weighted_segment_scores",
    "overlapping_segment_scores",
    "contextual_confusion_matrix",
    "contextual_f1_score",
    "contextual_precision",
    "contextual_recall",
    "per_class_confusion",
    "per_class_scores",
    "attribution_accuracy",
    "merge_class_scores",
    "point_confusion_matrix",
    "point_precision",
    "point_recall",
    "point_f1_score",
    "point_accuracy",
    "intervals_to_labels",
    "mse",
    "mae",
    "mape",
    "rmse",
    "r2_score",
    "REGRESSION_METRICS",
]
