"""Regression metrics used as unsupervised tuning objectives (Figure 5)."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "mae", "mape", "rmse", "r2_score", "REGRESSION_METRICS"]


def _check(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("Cannot compute a metric over empty arrays")
    return y_true, y_pred


def mse(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mape(y_true, y_pred) -> float:
    """Mean absolute percentage error (safe around zero)."""
    y_true, y_pred = _check(y_true, y_pred)
    denominator = np.where(np.abs(y_true) < 1e-8, 1e-8, np.abs(y_true))
    return float(np.mean(np.abs(y_true - y_pred) / denominator))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


#: Named registry of regression metrics for the tuner's objective functions.
REGRESSION_METRICS = {
    "mse": mse,
    "rmse": rmse,
    "mae": mae,
    "mape": mape,
    "r2": r2_score,
}
