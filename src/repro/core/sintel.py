"""The Sintel core API: ``fit`` / ``detect`` / ``evaluate`` (paper §3.1).

``Sintel`` wraps a pipeline behind the scikit-learn-style interface shown
in Figure 4a of the paper:

    >>> from repro import Sintel
    >>> sintel = Sintel("lstm_dynamic_threshold")
    >>> sintel.fit(train_data)
    >>> anomalies = sintel.detect(test_data)
"""

from __future__ import annotations

import pickle
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.pipeline import Pipeline, Template
from repro.data.signal import Signal
from repro.evaluation import overlapping_segment_scores, weighted_segment_scores
from repro.exceptions import NotFittedError, PipelineError

__all__ = ["Sintel"]

AnomalyList = List[Tuple[float, float, float]]


class Sintel:
    """End-to-end anomaly detection over a single pipeline.

    Args:
        pipeline: a registered pipeline name, a spec dictionary, a
            :class:`Template` or an already-built :class:`Pipeline`.
        hyperparameters: optional hyperparameter overrides, keyed by step
            name (or ``(step, name)`` tuples).
        executor: optional executor (name, class or instance — see
            :mod:`repro.core.executor`) that schedules the pipeline steps.
        pipeline_options: keyword options forwarded to the spec factory when
            ``pipeline`` is a registered name (e.g. ``window_size`` or
            ``epochs``).
    """

    def __init__(self, pipeline: Union[str, dict, Template, Pipeline],
                 hyperparameters: Optional[dict] = None, executor=None,
                 **pipeline_options):
        self._pipeline = self._resolve(pipeline, hyperparameters, pipeline_options)
        if executor is not None:
            self._pipeline.set_executor(executor)
        self.fitted = False

    @staticmethod
    def _resolve(pipeline, hyperparameters, pipeline_options) -> Pipeline:
        if isinstance(pipeline, Pipeline):
            if hyperparameters:
                pipeline.set_hyperparameters(hyperparameters)
            return pipeline
        if isinstance(pipeline, Template):
            return pipeline.create_pipeline(hyperparameters)
        if isinstance(pipeline, dict):
            return Pipeline(pipeline, hyperparameters=hyperparameters)
        if isinstance(pipeline, str):
            # Imported here to avoid a circular import with the pipeline hub.
            from repro.pipelines import load_pipeline

            return load_pipeline(pipeline, hyperparameters=hyperparameters,
                                 **pipeline_options)
        raise PipelineError(f"Cannot build a pipeline from {type(pipeline).__name__}")

    # ------------------------------------------------------------------ #
    # data handling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_array(data) -> np.ndarray:
        """Accept a Signal or a ``(timestamp, values...)`` array."""
        if isinstance(data, Signal):
            return data.to_array()
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            # A bare value series: generate an integer timestamp column.
            data = np.column_stack([np.arange(len(data), dtype=float), data])
        if data.ndim != 2 or data.shape[1] < 2:
            raise PipelineError(
                "data must be a Signal or a 2D (timestamp, values...) array"
            )
        return data

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def pipeline(self) -> Pipeline:
        """The underlying executable pipeline."""
        return self._pipeline

    @property
    def pipeline_name(self) -> str:
        """Name of the underlying pipeline."""
        return self._pipeline.name

    def set_executor(self, executor) -> None:
        """Select the executor used to schedule the pipeline steps."""
        self._pipeline.set_executor(executor)

    def fit(self, data, **context_variables) -> "Sintel":
        """Train the pipeline on ``data``."""
        self._pipeline.fit(self._to_array(data), **context_variables)
        self.fitted = True
        return self

    def detect(self, data, visualization: bool = False,
               **context_variables) -> AnomalyList:
        """Detect anomalies in ``data`` with the trained pipeline."""
        if not self.fitted:
            raise NotFittedError("Sintel.detect called before Sintel.fit")
        return self._pipeline.detect(
            self._to_array(data), visualization=visualization, **context_variables
        )

    def detect_many(self, signals, exact: bool = True, precision: str = None,
                    **context_variables) -> List[AnomalyList]:
        """Detect anomalies in many signals with one batched pipeline pass.

        The batch data-plane counterpart of :meth:`detect`: the whole batch
        flows through each pipeline step together (vectorized where the
        primitives support it), returning one anomaly list per signal in
        input order — bitwise-identical to ``[self.detect(s) for s in
        signals]`` but substantially faster for batches of similar signals.

        ``exact=False`` opts into the fused batch plan: NN forwards run as
        concatenated batched matmuls and contiguous step chains execute
        as single fused passes over arena buffers, trading bitwise parity
        for tolerance parity and a large speedup on recurrent pipelines
        (see :meth:`~repro.core.pipeline.Pipeline.detect_batch`).
        ``precision="float32"`` (requires ``exact=False``) additionally
        keeps fused chains in single precision end to end.
        """
        if not self.fitted:
            raise NotFittedError("Sintel.detect_many called before Sintel.fit")
        arrays = [self._to_array(signal) for signal in signals]
        return self._pipeline.detect_batch(arrays, exact=exact,
                                           precision=precision,
                                           **context_variables)

    def fit_detect(self, data, **context_variables) -> AnomalyList:
        """Fit on ``data`` and detect anomalies in the same data."""
        self.fit(data, **context_variables)
        return self.detect(data, **context_variables)

    def stream(self, **stream_options):
        """Open a live stream over the fitted pipeline.

        Returns a :class:`~repro.core.stream.StreamRunner` that consumes
        ``(timestamp, values...)`` micro-batches via ``send`` and emits
        stable-id anomaly events incrementally; keyword options (window
        size, drift detector, retrain policy...) are forwarded to the
        runner. The pipeline must be fitted first.
        """
        if not self.fitted:
            raise NotFittedError("Sintel.stream called before Sintel.fit")
        # Imported lazily to avoid a circular import at module load time.
        from repro.core.stream import StreamRunner

        return StreamRunner(self._pipeline, **stream_options)

    def evaluate(self, data, ground_truth, fit: bool = False,
                 method: str = "overlapping") -> dict:
        """Detect anomalies and score them against ``ground_truth``.

        Args:
            data: signal to analyze.
            ground_truth: known anomalies as ``(start, end)`` intervals.
            fit: whether to (re)fit the pipeline on ``data`` first.
            method: ``"overlapping"`` or ``"weighted"`` (paper §2.3).

        Returns:
            Dictionary with ``precision``, ``recall`` and ``f1``.
        """
        array = self._to_array(data)
        if fit or not self.fitted:
            self.fit(array)
        detected = self.detect(array)
        if method == "weighted":
            data_range = (float(array[0, 0]), float(array[-1, 0]))
            return weighted_segment_scores(ground_truth, detected, data_range)
        if method == "overlapping":
            return overlapping_segment_scores(ground_truth, detected)
        raise ValueError(f"Unknown evaluation method {method!r}")

    # ------------------------------------------------------------------ #
    # hyperparameters and persistence
    # ------------------------------------------------------------------ #
    def get_hyperparameters(self) -> dict:
        """Current hyperparameter assignment of the pipeline."""
        return self._pipeline.get_hyperparameters()

    def set_hyperparameters(self, hyperparameters: dict) -> None:
        """Override pipeline hyperparameters (resets the fitted state)."""
        self._pipeline.set_hyperparameters(hyperparameters)
        self.fitted = False

    def get_tunable_hyperparameters(self) -> dict:
        """The tunable hyperparameter space of the pipeline."""
        return self._pipeline.get_tunable_hyperparameters()

    def save(self, path) -> None:
        """Serialize the Sintel instance (including the fitted pipeline)."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle)

    @classmethod
    def load(cls, path) -> "Sintel":
        """Load a Sintel instance saved with :meth:`save`."""
        with open(path, "rb") as handle:
            instance = pickle.load(handle)
        if not isinstance(instance, cls):
            raise PipelineError(f"File {path} does not contain a Sintel instance")
        return instance

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Sintel(pipeline={self.pipeline_name!r}, fitted={self.fitted})"
