"""``repro.core``: primitives, pipelines, templates, and the Sintel API."""

from repro.core.analysis import AnalysisReport, analyze
from repro.core.executor import (
    CachingExecutor,
    ExecutionPlan,
    ProcessExecutor,
    Executor,
    SerialExecutor,
    StepNode,
    ThreadedExecutor,
    get_executor,
    list_executors,
)
from repro.core.fleet import (
    FleetLane,
    FleetStreamRunner,
    StandbyCache,
    StreamScheduler,
    TierPolicy,
)
from repro.core.pipeline import Pipeline, Template
from repro.core.plan import (
    PLAN_MODES,
    CompiledStep,
    FusedStep,
    LaneRegistry,
    LaneStep,
    PlanCompiler,
)
from repro.core.primitive import (
    Primitive,
    get_primitive,
    get_primitive_class,
    list_primitives,
    register_primitive,
)
from repro.core.sintel import Sintel
from repro.core.stream import StreamEvent, StreamRunner

__all__ = [
    "StreamEvent",
    "StreamRunner",
    "Primitive",
    "register_primitive",
    "get_primitive",
    "get_primitive_class",
    "list_primitives",
    "Template",
    "Pipeline",
    "PLAN_MODES",
    "CompiledStep",
    "FusedStep",
    "LaneRegistry",
    "LaneStep",
    "PlanCompiler",
    "FleetLane",
    "FleetStreamRunner",
    "StreamScheduler",
    "TierPolicy",
    "StandbyCache",
    "Sintel",
    "analyze",
    "AnalysisReport",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "CachingExecutor",
    "ProcessExecutor",
    "ExecutionPlan",
    "StepNode",
    "get_executor",
    "list_executors",
]
