"""Pluggable execution engine for pipelines and benchmarks.

The paper models a pipeline as a DAG of primitives (§3.2) and the benchmark
runs every pipeline × signal combination under identical conditions (§3.4).
This module separates *what* to run from *how* to run it:

* :class:`SerialExecutor` — runs steps in declaration order (the default,
  preserving the original semantics exactly);
* :class:`ThreadedExecutor` — schedules independent DAG branches concurrently
  with a topological ready-queue, and fans generic job lists (benchmark
  pipeline × signal jobs) out over a thread pool;
* :class:`CachingExecutor` — wraps another executor and memoizes per-step
  outputs keyed by (step spec, hyperparameters, input digests) so repeated
  tuning or benchmark runs skip unchanged pipeline prefixes;
* :class:`ProcessExecutor` — schedules independent DAG branches and benchmark
  jobs across a ``multiprocessing`` pool, sidestepping the GIL for CPU-heavy
  primitives. Large arrays travel to the workers through POSIX shared memory
  (``multiprocessing.shared_memory``) with a plain-pickle fallback.

An executor consumes an :class:`ExecutionPlan` — a list of :class:`StepNode`
entries carrying the variables each step reads and writes — and returns the
final context plus per-step timings, keeping ``Pipeline.step_timings`` intact
for the Figure 7 computational benchmarks.
"""

from __future__ import annotations

import contextlib
import hashlib
import multiprocessing
import os
import pickle
import threading
import time
import tracemalloc
import warnings
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ExecutorError

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - ancient interpreters only
    _shared_memory = None

__all__ = [
    "StepNode",
    "ExecutionPlan",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "CachingExecutor",
    "ProcessExecutor",
    "get_executor",
    "list_executors",
    "trace_memory",
    "sweep_orphan_segments",
    "SHM_MIN_BYTES",
    "SHM_NAME_PREFIX",
    "MP_START_ENV",
    "set_timing_sink",
    "observe_step_timings",
]

#: Environment variable selecting the multiprocessing start method used by
#: :class:`ProcessExecutor` pools (``fork`` / ``spawn`` / ``forkserver``).
#: Unset (or empty) keeps the platform default. CI runs the executor parity
#: suite under ``REPRO_MP_START=spawn`` to prove macOS-default semantics.
MP_START_ENV = "REPRO_MP_START"


def _mp_context():
    """The start-method context for worker pools (honours ``MP_START_ENV``)."""
    method = os.environ.get(MP_START_ENV, "").strip()
    if not method:
        return None
    return multiprocessing.get_context(method)


# --------------------------------------------------------------------------- #
# step-timing observability
# --------------------------------------------------------------------------- #
#: Optional process-wide sink receiving every run's ``step_timings`` dict
#: (``{step_name: {"elapsed": ..., ...}}``). The API gateway installs an
#: aggregator here so ``GET /metrics`` can export executor timings; when no
#: sink is installed the hook is a no-op on the hot path.
_TIMING_SINK: Optional[Callable[[Dict[str, dict]], None]] = None


def set_timing_sink(sink: Optional[Callable[[Dict[str, dict]], None]]
                    ) -> Optional[Callable]:
    """Install (or clear, with ``None``) the step-timing sink.

    Returns the previously installed sink so callers can restore it.
    """
    global _TIMING_SINK
    previous = _TIMING_SINK
    _TIMING_SINK = sink
    return previous


def observe_step_timings(timings: Dict[str, dict]) -> None:
    """Feed one run's per-step timings to the installed sink, if any.

    Sink errors are swallowed: observability must never fail a detection.
    """
    sink = _TIMING_SINK
    if sink is None or not timings:
        return
    try:
        sink(timings)
    except Exception:  # noqa: BLE001 - observability is best-effort
        pass


# --------------------------------------------------------------------------- #
# execution plans
# --------------------------------------------------------------------------- #
@dataclass
class StepNode:
    """One schedulable unit of work inside an :class:`ExecutionPlan`.

    Args:
        name: unique step name within the plan.
        engine: engine category of the underlying primitive.
        reads: context variable names the step consumes (fit and produce).
        writes: context variable names the step produces, in output order.
        execute: ``execute(context, fit)`` callable returning a dictionary of
            context updates. It must not mutate ``context`` itself — the
            executor applies updates so it can serialize writes.
        fingerprint: stable identity of the step configuration (spec +
            hyperparameters, plus a per-build token for stateful steps) used
            as the cache key prefix.
        cacheable: ``cacheable(fit)`` predicate deciding whether the step's
            outputs may be served from a cache in the given mode.
        payload: optional zero-argument factory returning a *picklable* work
            unit for cross-process dispatch. The returned object must expose
            an ``engine`` attribute and a ``run(context, fit)`` method
            returning ``(updates, state)``, where ``state`` is ``None`` or an
            object for :attr:`absorb` (typically the fitted primitive).
            Plans without payloads still run on every in-process executor;
            :class:`ProcessExecutor` falls back to serial for them.
        absorb: parent-side callback receiving the ``state`` a process worker
            returned, so mutations that happened in the worker (a fitted or
            incrementally-updated primitive) are grafted back into the
            pipeline that built the plan.
        mode: plan mode this node was lowered for (``fit`` / ``detect`` /
            ``stream`` / ``batch`` — see :mod:`repro.core.plan`). The
            caching executor treats ``batch`` nodes specially (per-signal
            memoization) and splits its counters by it.
        signal_fingerprint: exact batch nodes only — the *single-signal*
            fingerprint of the same step, under which the caching executor
            serves and memoizes per-signal slices of the batch. Empty for
            non-batch nodes and for fused (tolerance-parity) batch nodes,
            which must never touch the exact per-signal cache.
    """

    name: str
    engine: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    execute: Callable[[dict, bool], dict]
    fingerprint: str = ""
    cacheable: Callable[[bool], bool] = field(default=lambda fit: False)
    payload: Optional[Callable[[], object]] = None
    absorb: Optional[Callable[[object], None]] = None
    mode: str = "detect"
    signal_fingerprint: str = ""
    #: Fused batch nodes only — indices of the compiler cells this node
    #: covers (a contiguous chain lowered into one FusedStep). ``None``
    #: for ordinary single-step nodes; the plan compiler's ``refresh``
    #: uses it to re-stamp combined fingerprints after a refit.
    members: Optional[Tuple[int, ...]] = None


class ExecutionPlan:
    """An ordered list of step nodes plus their dependency structure.

    The dependency graph is derived from the read/write sets in serial
    declaration order and covers all three hazard classes, so any schedule
    that respects it is equivalent to the serial one:

    * read-after-write — a consumer waits for the last producer of each
      variable it reads;
    * write-after-write — a re-producer waits for the previous producer;
    * write-after-read — a re-producer waits for every earlier reader of
      the variable it overwrites.
    """

    def __init__(self, nodes: Sequence[StepNode]):
        self.nodes = list(nodes)
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ExecutorError(f"Duplicate step names in plan: {names}")
        self.dependencies = self._build_dependencies(self.nodes)

    @staticmethod
    def _build_dependencies(nodes: Sequence[StepNode]) -> Dict[str, set]:
        dependencies: Dict[str, set] = {node.name: set() for node in nodes}
        last_writer: Dict[str, str] = {}
        readers: Dict[str, set] = {}
        for node in nodes:
            for variable in node.reads:
                if variable in last_writer:
                    dependencies[node.name].add(last_writer[variable])
                readers.setdefault(variable, set()).add(node.name)
            for variable in node.writes:
                if variable in last_writer:
                    dependencies[node.name].add(last_writer[variable])
                for reader in readers.get(variable, ()):
                    if reader != node.name:
                        dependencies[node.name].add(reader)
                last_writer[variable] = node.name
                readers[variable] = set()
        return dependencies

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


# --------------------------------------------------------------------------- #
# profiling helpers
# --------------------------------------------------------------------------- #
class _MemoryProbe:
    """Result holder for :func:`trace_memory`."""

    def __init__(self):
        self.memory = 0


@contextlib.contextmanager
def trace_memory(enabled: bool = True):
    """Measure peak traced memory of the ``with`` body, nested-safe.

    Yields a probe whose ``memory`` attribute holds the peak delta in bytes
    once the block exits. When an outer ``tracemalloc`` trace is already
    active (e.g. the benchmark runner profiling a whole pipeline run) the
    body is measured against a fresh peak (``tracemalloc.reset_peak``) so
    earlier high-water marks do not bleed into this block, and the outer
    trace is left running; otherwise the trace is owned and stopped here.
    An enclosing probe consequently reports the peak since its *last* inner
    probe, not its true lifetime peak — hold an outer probe only as a trace
    anchor, not for its number.

    Concurrent measurements must share one outer trace: whoever runs
    measured work on several threads should hold ``trace_memory`` open
    around the fan-out so no single task stops the trace while siblings
    are still measuring (their deltas then become rough estimates, since
    the peak reset and reads race across threads).
    """
    probe = _MemoryProbe()
    owns_trace = False
    baseline = 0
    if enabled:
        if tracemalloc.is_tracing():
            baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            owns_trace = True
    try:
        yield probe
    finally:
        if enabled:
            if tracemalloc.is_tracing():
                peak = tracemalloc.get_traced_memory()[1]
                probe.memory = max(peak - baseline, 0)
            if owns_trace:
                tracemalloc.stop()


def _run_measured(action: Callable[[], dict], profile: bool) -> Tuple[dict, float, int]:
    """Run ``action`` and return ``(result, elapsed_seconds, memory_bytes)``."""
    started = time.perf_counter()
    with trace_memory(profile) as probe:
        result = action()
    return result, time.perf_counter() - started, probe.memory


# --------------------------------------------------------------------------- #
# cross-process array transfer
# --------------------------------------------------------------------------- #
#: Arrays at or above this many bytes are parked in shared memory instead of
#: being pickled through the worker pipe.
SHM_MIN_BYTES = 1 << 18

#: Naming scheme of the segments this module creates:
#: ``repro_<creator-pid>_<random>``. Embedding the creator pid makes
#: orphans attributable — :func:`sweep_orphan_segments` reclaims segments
#: whose creator died without unlinking (SIGKILL between allocation and
#: cleanup), while never touching segments of live processes.
SHM_NAME_PREFIX = "repro_"

#: Where POSIX shared memory is mounted on Linux; the sweep is a no-op on
#: platforms without it (macOS exposes no listable shm directory).
_SHM_DIR = "/dev/shm"


def _create_segment(nbytes: int):
    """Allocate a fresh ``repro_<pid>_<random>`` shared-memory segment."""
    for _ in range(8):
        name = f"{SHM_NAME_PREFIX}{os.getpid()}_{os.urandom(4).hex()}"
        try:
            return _shared_memory.SharedMemory(name=name, create=True,
                                               size=nbytes)
        except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
            continue
    # Collision storm (or a platform rejecting our names): let the stdlib
    # pick its own anonymous name rather than fail the transfer.
    return _shared_memory.SharedMemory(create=True, size=nbytes)


def _pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    return True


def sweep_orphan_segments(directory: str = _SHM_DIR) -> int:
    """Unlink ``repro_*`` shared-memory segments whose creators died.

    A worker hard-killed (SIGKILL, OOM) between allocating a transfer
    segment and handing ownership to the parent strands the segment in
    ``/dev/shm`` until reboot. Every pool start — :class:`ProcessExecutor`
    spinning up, a ``python -m repro.worker`` fleet worker booting — calls
    this sweep: any segment following the :data:`SHM_NAME_PREFIX` naming
    scheme whose embedded creator pid no longer exists is reclaimed.
    Segments of live processes (including this one) are never touched, and
    foreign ``/dev/shm`` entries are ignored. Returns how many segments
    were unlinked.
    """
    if _shared_memory is None or not os.path.isdir(directory):
        return 0
    swept = 0
    for entry in os.listdir(directory):
        if not entry.startswith(SHM_NAME_PREFIX):
            continue
        pid_part = entry[len(SHM_NAME_PREFIX):].split("_", 1)[0]
        if not pid_part.isdigit():
            continue
        pid = int(pid_part)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        with contextlib.suppress(Exception):
            segment = _shared_memory.SharedMemory(name=entry)
            segment.unlink()
            segment.close()
            swept += 1
    return swept


class _ShmRef:
    """Picklable handle to a numpy array parked in POSIX shared memory."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: tuple, dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state


def _shm_eligible(value) -> bool:
    return (
        _shared_memory is not None
        and isinstance(value, np.ndarray)
        and value.nbytes >= SHM_MIN_BYTES
        and value.dtype.hasobject is False
    )


def encode_for_transfer(value, segments: list):
    """Swap large arrays in ``value`` for shared-memory handles.

    Walks plain containers (dict / list / tuple); every qualifying array is
    copied into a fresh ``SharedMemory`` segment and replaced by a
    :class:`_ShmRef`. The created segments are appended to ``segments`` —
    the caller owns them and must :func:`release_transfers` once the worker
    is done. Anything that cannot go through shared memory (small arrays,
    arbitrary objects, segment allocation failure) is returned unchanged and
    rides the normal pickle channel.
    """
    if _shm_eligible(value):
        try:
            segment = _create_segment(value.nbytes)
        except OSError:  # no /dev/shm, or it is full: pickle fallback
            return value
        mirror = np.ndarray(value.shape, dtype=value.dtype, buffer=segment.buf)
        mirror[...] = value
        segments.append(segment)
        return _ShmRef(segment.name, value.shape, value.dtype.str)
    if isinstance(value, dict):
        return {key: encode_for_transfer(item, segments)
                for key, item in value.items()}
    if isinstance(value, list):
        return [encode_for_transfer(item, segments) for item in value]
    if type(value) is tuple:
        return tuple(encode_for_transfer(item, segments) for item in value)
    return value


def decode_from_transfer(value):
    """Materialize shared-memory handles back into arrays (worker side).

    The array is copied out of the segment so the parent can release it as
    soon as the task finishes, and so worker-side mutation can never leak
    back. The parent owns the segment lifecycle: pool workers share the
    parent's resource tracker under every start method (fork inherits the
    tracker fd, spawn/forkserver pass it explicitly), and the tracker's
    registry is a set, so the worker's attach-time registration dedups
    against the parent's create-time one and the parent's ``unlink`` is
    the single cleanup point — the worker must *not* unregister.
    """
    if isinstance(value, _ShmRef):
        segment = _shared_memory.SharedMemory(name=value.name)
        try:
            return np.ndarray(
                value.shape, dtype=np.dtype(value.dtype), buffer=segment.buf
            ).copy()
        finally:
            segment.close()
    if isinstance(value, dict):
        return {key: decode_from_transfer(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_from_transfer(item) for item in value]
    if type(value) is tuple:
        return tuple(decode_from_transfer(item) for item in value)
    return value


def release_transfers(segments: list) -> None:
    """Close and unlink every shared-memory segment in ``segments``."""
    for segment in segments:
        with contextlib.suppress(Exception):
            segment.close()
        with contextlib.suppress(Exception):
            segment.unlink()
    segments.clear()


def encode_result(value):
    """Park a worker's large output arrays in shared memory (worker side).

    The zero-copy *return* path: the mirror of :func:`encode_for_transfer`
    for values travelling worker → parent. Qualifying arrays are copied
    into fresh segments whose handles ride the result pickle; the worker
    drops its own mappings immediately (named POSIX segments persist until
    unlinked) and ownership passes to the parent, which must materialize
    the value with :func:`decode_and_release` — the single cleanup point.
    If anything fails mid-encode the created segments are unlinked here and
    the error propagates, so a worker that raises never leaks ``/dev/shm``
    space past the task.

    Ownership transfer detail: the segments are *unregistered* from this
    process's resource tracker once encoding succeeds — the parent's
    attach-time registration (and unlink-time unregistration) in
    :func:`decode_and_release` becomes the single authoritative record, so
    neither side's tracker warns about (or double-unlinks) segments the
    other side already reclaimed. A worker hard-killed in the instant
    between unregistration and the result reaching the parent can strand a
    segment until reboot; the pool surfaces that as ``BrokenProcessPool``,
    and the window is a few microseconds of pickling.
    """
    segments: list = []
    try:
        encoded = encode_for_transfer(value, segments)
    except BaseException:
        release_transfers(segments)
        raise
    for segment in segments:
        with contextlib.suppress(Exception):
            segment.close()
        with contextlib.suppress(Exception):
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
    return encoded


def decode_and_release(value):
    """Materialize a worker-encoded result and unlink its segments.

    Parent-side counterpart of :func:`encode_result`: every handle is
    copied out and its segment unlinked immediately, so the shared-memory
    footprint of a fan-out is bounded by the results in flight, not the
    whole job list.
    """
    if isinstance(value, _ShmRef):
        segment = _shared_memory.SharedMemory(name=value.name)
        try:
            return np.ndarray(
                value.shape, dtype=np.dtype(value.dtype), buffer=segment.buf
            ).copy()
        finally:
            with contextlib.suppress(Exception):
                segment.close()
            with contextlib.suppress(Exception):
                segment.unlink()
    if isinstance(value, dict):
        return {key: decode_and_release(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_and_release(item) for item in value]
    if type(value) is tuple:
        return tuple(decode_and_release(item) for item in value)
    return value


def _in_worker_process() -> bool:
    """Whether this interpreter is itself a multiprocessing worker."""
    return multiprocessing.parent_process() is not None


def _process_plan_worker(payload, context, fit: bool, profile: bool):
    """Run one step payload inside a pool worker.

    Returns ``(updates, timing, state)``; ``state`` is the mutated primitive
    (fit or incremental update) the parent must absorb, or ``None``. Large
    arrays in ``updates`` return through shared memory
    (:func:`encode_result`); the parent materializes them with
    :func:`decode_and_release`.
    """
    context = decode_from_transfer(context)
    started = time.perf_counter()
    with trace_memory(profile) as probe:
        updates, state = payload.run(context, fit)
    timing = {
        "elapsed": time.perf_counter() - started,
        "engine": payload.engine,
        "memory": probe.memory,
    }
    return encode_result(updates), timing, state


def _process_map_worker(function, item):
    """Apply one mapped function inside a pool worker.

    The result's large arrays return through shared memory; the parent
    materializes them with :func:`decode_and_release`.
    """
    return encode_result(function(decode_from_transfer(item)))


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
class Executor:
    """Scheduling strategy for pipeline steps and generic job lists.

    Subclasses implement :meth:`run_plan` (pipeline step scheduling) and
    :meth:`map` (benchmark fan-out). Both must preserve serial semantics:
    ``run_plan`` may only reorder steps the dependency graph allows, and
    ``map`` returns results in the order of ``items`` regardless of the
    order in which they complete.
    """

    name = "executor"

    def run_plan(self, plan: ExecutionPlan, context: dict, fit: bool = False,
                 profile: bool = False) -> Tuple[dict, Dict[str, dict]]:
        """Execute every node of ``plan`` over ``context``.

        Returns the final context and a ``{step: timing}`` mapping with keys
        ``elapsed``, ``engine`` and ``memory`` (plus ``cached`` when a
        caching layer served the step).
        """
        raise NotImplementedError

    def map(self, function: Callable, items: Iterable,
            progress: Optional[Callable[[int, object], None]] = None) -> List:
        """Apply ``function`` to every item, returning results in order.

        ``progress(index, result)``, when given, is invoked in the *parent*
        as each item completes (completion order, not item order) — the hook
        the benchmark checkpointer uses to persist finished jobs while the
        rest of the fan-out is still running.
        """
        raise NotImplementedError

    def _run_node(self, node: StepNode, context: dict, fit: bool,
                  profile: bool) -> Tuple[dict, dict]:
        """Execute one node and return ``(updates, timing)``."""
        updates, elapsed, memory = _run_measured(
            lambda: node.execute(context, fit), profile
        )
        timing = {"elapsed": elapsed, "engine": node.engine, "memory": memory}
        if isinstance(updates, dict) and updates.pop("__cached__", False):
            timing["cached"] = True
        return updates, timing

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}()"


class SerialExecutor(Executor):
    """Run steps strictly in declaration order — the original semantics."""

    name = "serial"

    def run_plan(self, plan, context, fit=False, profile=False):
        timings: Dict[str, dict] = {}
        for node in plan:
            updates, timing = self._run_node(node, context, fit, profile)
            context.update(updates)
            timings[node.name] = timing
        return context, timings

    def map(self, function, items, progress=None):
        results = []
        for index, item in enumerate(items):
            result = function(item)
            results.append(result)
            if progress is not None:
                progress(index, result)
        return results


class ThreadedExecutor(Executor):
    """Schedule independent DAG branches concurrently.

    A topological ready-queue submits every step whose dependencies have
    completed to a thread pool, so parallel template branches (e.g. two
    independent feature extractors) overlap while the dependency graph —
    including write hazards — keeps results identical to the serial run.

    Args:
        max_workers: thread pool size (default: ``min(8, n_steps)``).
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ExecutorError("max_workers must be at least 1")
        self.max_workers = max_workers

    def _pool_size(self, n_items: int) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return max(1, min(8, n_items))

    def run_plan(self, plan, context, fit=False, profile=False):
        remaining = {name: set(deps) for name, deps in plan.dependencies.items()}
        dependents: Dict[str, set] = {node.name: set() for node in plan}
        for name, deps in plan.dependencies.items():
            for dep in deps:
                dependents[dep].add(name)
        by_name = {node.name: node for node in plan}

        timings: Dict[str, dict] = {}
        lock = threading.Lock()
        ready = [node.name for node in plan if not remaining[node.name]]
        failure: List[BaseException] = []

        def run_one(name: str) -> str:
            node = by_name[name]
            updates, timing = self._run_node(node, context, fit, profile)
            with lock:
                context.update(updates)
                timings[name] = timing
            return name

        # Hold one trace across the whole schedule: concurrent steps must
        # not own (and stop) the global tracemalloc trace while siblings
        # are still measuring.
        with trace_memory(profile):
            with ThreadPoolExecutor(max_workers=self._pool_size(len(plan))) as pool:
                pending = {pool.submit(run_one, name) for name in ready}
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        error = future.exception()
                        if error is not None:
                            failure.append(error)
                            continue
                        finished = future.result()
                        for name in dependents[finished]:
                            remaining[name].discard(finished)
                            if not remaining[name] and not failure:
                                pending.add(pool.submit(run_one, name))
                    if failure:
                        # Drain in-flight work, then surface the first error.
                        wait(pending)
                        pending = set()
        if failure:
            raise failure[0]

        # Report timings in plan order, matching the serial executor.
        ordered = {node.name: timings[node.name] for node in plan}
        return context, ordered

    def map(self, function, items, progress=None):
        items = list(items)
        if not items:
            return []
        results: List = [None] * len(items)
        with ThreadPoolExecutor(max_workers=self._pool_size(len(items))) as pool:
            futures = {pool.submit(function, item): index
                       for index, item in enumerate(items)}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    results[index] = future.result()
                    if progress is not None:
                        progress(index, results[index])
        return results


class CachingExecutor(Executor):
    """Memoize per-step outputs on top of another executor.

    Cache keys combine the step fingerprint (spec + hyperparameters, plus a
    per-build token for fitted stateful steps), the execution mode, and a
    content digest of every input variable, so a hyperparameter change or
    different input data invalidates the entry. Steps whose inputs cannot be
    digested deterministically bypass the cache.

    Batch-mode plans are cached **per signal**: an exact batch node carries
    the single-signal fingerprint of its step
    (:attr:`StepNode.signal_fingerprint`), and the executor digests each
    signal's slice of the batched inputs separately. Signals already in the
    memo — whether a previous single-signal run or an earlier batch put
    them there — are served from cache, only the remaining signals run
    through the fused batch pass, and their output slices are memoized
    under the same per-signal keys, so batch and single-signal traffic
    share one cache. Fused (``exact=False``) batch nodes are excluded from
    the per-signal store (their outputs are only tolerance-equal) and fall
    back to whole-batch memoization under their own namespaced fingerprint.

    The memo store is a bounded LRU: once ``maxsize`` entries accumulate,
    the least-recently-used entry is evicted, so long tuning sessions and
    stream sessions cannot grow memory without limit. ``hits`` / ``misses``
    / ``evictions`` counters (see :meth:`stats`) expose the cache's
    effectiveness, totalled and split by plan mode (``batch`` vs
    ``single``).

    Args:
        inner: the executor that actually schedules steps (default serial).
        maxsize: LRU capacity in cached step outputs (``max_entries`` is
            accepted as an alias).
    """

    name = "caching"

    #: Plan modes whose cache traffic is accounted under ``batch`` in
    #: :meth:`stats`; everything else counts as ``single``.
    _MODE_KEYS = ("single", "batch")

    def __init__(self, inner: Optional[Union[str, "Executor"]] = None,
                 maxsize: int = 256, max_entries: Optional[int] = None):
        if max_entries is not None:
            maxsize = max_entries
        if maxsize < 1:
            raise ExecutorError("maxsize must be at least 1")
        self.inner = get_executor(inner or "serial")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._by_mode = {key: {"hits": 0, "misses": 0, "evictions": 0}
                         for key in self._MODE_KEYS}
        # Entries are ``(mode, updates)``: the mode that *stored* the entry
        # attributes its eventual eviction in the per-mode counters.
        self._cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def max_entries(self) -> int:
        """The LRU capacity bound (alias of ``maxsize``)."""
        return self.maxsize

    @staticmethod
    def _mode_key(node: "StepNode") -> str:
        return "batch" if node.mode == "batch" else "single"

    def stats(self) -> dict:
        """Current ``hits`` / ``misses`` / ``evictions`` / occupancy.

        Totals stay at the top level; ``by_mode`` splits the same three
        counters by the plan mode of the accessing node — ``batch`` for
        batch-mode plans (including per-signal hits and misses served from
        *inside* a batch step), ``single`` for everything else (fit,
        detect, stream). Evictions are attributed to the mode that stored
        the evicted entry. :meth:`clear` resets the totals **and** both
        mode splits along with the entries; counters are never reset
        implicitly.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._cache),
                "max_entries": self.maxsize,
                "by_mode": {key: dict(counters)
                            for key, counters in self._by_mode.items()},
            }

    # -- pickling: locks are not picklable and a cache is never worth
    # -- shipping with a saved model, so drop both.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def clear(self) -> None:
        """Drop every cached entry and reset all counters (incl. by-mode)."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            for counters in self._by_mode.values():
                counters.update(hits=0, misses=0, evictions=0)

    @staticmethod
    def _digest(value) -> Optional[str]:
        hasher = hashlib.sha256()
        if value is None:
            hasher.update(b"\x00none")
        elif isinstance(value, np.ndarray):
            hasher.update(str(value.dtype).encode())
            hasher.update(str(value.shape).encode())
            hasher.update(np.ascontiguousarray(value).tobytes())
        elif isinstance(value, (bool, int, float, str, bytes)):
            hasher.update(type(value).__name__.encode())
            hasher.update(repr(value).encode())
        else:
            try:
                hasher.update(pickle.dumps(value))
            except Exception:  # noqa: BLE001 - undigestable input: skip cache
                return None
        return hasher.hexdigest()

    def _key(self, node: StepNode, context: dict) -> Optional[tuple]:
        # The fit/detect execution mode is deliberately NOT part of the
        # key: a step is only cacheable in fit mode when fitting is a
        # no-op for it, so a cacheable step produces identical outputs in
        # both modes and a fit run can warm the cache for subsequent
        # detect runs. (Batch plans are namespaced via the fingerprint
        # itself, and their per-signal path keys on signal_fingerprint.)
        parts = []
        for variable in sorted(node.reads):
            digest = self._digest(context.get(variable))
            if digest is None:
                return None
            parts.append((variable, digest))
        return (node.fingerprint, tuple(parts))

    # -- counter-accounted store access (all called with the lock held) --
    def _hit(self, key: tuple, mode: str) -> dict:
        self.hits += 1
        self._by_mode[mode]["hits"] += 1
        self._cache.move_to_end(key)
        return dict(self._cache[key][1])

    def _store(self, key: tuple, updates: dict, mode: str) -> None:
        self.misses += 1
        self._by_mode[mode]["misses"] += 1
        self._cache[key] = (mode, dict(updates))
        while len(self._cache) > self.maxsize:
            _, (stored_mode, _) = self._cache.popitem(last=False)
            self.evictions += 1
            self._by_mode[stored_mode]["evictions"] += 1

    # ------------------------------------------------------------------ #
    # the batch-aware path: per-signal memoization inside a batch step
    # ------------------------------------------------------------------ #
    def _signal_keys(self, node: StepNode, context: dict) -> Optional[list]:
        """One single-signal cache key per batch entry (None = undigestable)."""
        reads = sorted(node.reads)
        size = None
        for variable in reads:
            value = context.get(variable)
            if not isinstance(value, list):
                return None  # not a batched context: no per-signal view
            if size is None:
                size = len(value)
            elif len(value) != size:
                return None
        if size is None:
            return None
        keys = []
        for index in range(size):
            parts = []
            for variable in reads:
                digest = self._digest(context[variable][index])
                if digest is None:
                    parts = None
                    break
                parts.append((variable, digest))
            keys.append((node.signal_fingerprint, tuple(parts))
                        if parts is not None else None)
        return keys

    def _run_batch_aware(self, node: StepNode, context: dict,
                         fit: bool) -> dict:
        keys = self._signal_keys(node, context)
        if keys is None:
            return node.execute(context, fit)
        size = len(keys)
        served: Dict[int, dict] = {}
        with self._lock:
            for index, key in enumerate(keys):
                if key is not None and key in self._cache:
                    served[index] = self._hit(key, "batch")
        missing = [index for index in range(size) if index not in served]
        if not missing:
            updates = {
                variable: [served[index][variable] for index in range(size)]
                for variable in node.writes
            }
            updates["__cached__"] = True
            return updates
        # Run only the uncached signals through the fused batch body; the
        # CompiledStep is batch-shape-agnostic, so a sub-batch is just a
        # smaller context.
        subcontext = {
            variable: [context[variable][index] for index in missing]
            for variable in node.reads if variable in context
        }
        computed = node.execute(subcontext, fit)
        with self._lock:
            for position, index in enumerate(missing):
                if keys[index] is None:
                    self.misses += 1  # ran, but cannot be memoized
                    self._by_mode["batch"]["misses"] += 1
                    continue
                slice_updates = {
                    variable: computed[variable][position]
                    for variable in node.writes
                }
                self._store(keys[index], slice_updates, "batch")
        if len(missing) == size:
            return computed
        by_position = dict(zip(missing, range(len(missing))))
        return {
            variable: [
                computed[variable][by_position[index]]
                if index in by_position else served[index][variable]
                for index in range(size)
            ]
            for variable in node.writes
        }

    def _wrap(self, node: StepNode) -> StepNode:
        mode = self._mode_key(node)

        def execute(context: dict, fit: bool) -> dict:
            if not node.cacheable(fit) or not node.fingerprint:
                return node.execute(context, fit)
            if node.mode == "batch" and node.signal_fingerprint:
                return self._run_batch_aware(node, context, fit)
            key = self._key(node, context)
            if key is None:
                return node.execute(context, fit)
            with self._lock:
                if key in self._cache:
                    cached = self._hit(key, mode)
                    cached["__cached__"] = True
                    return cached
            updates = node.execute(context, fit)
            with self._lock:
                self._store(key, updates, mode)
            return updates

        return StepNode(
            name=node.name, engine=node.engine, reads=node.reads,
            writes=node.writes, execute=execute,
            fingerprint=node.fingerprint, cacheable=node.cacheable,
            mode=node.mode, signal_fingerprint=node.signal_fingerprint,
        )

    def run_plan(self, plan, context, fit=False, profile=False):
        wrapped = ExecutionPlan([self._wrap(node) for node in plan])
        return self.inner.run_plan(wrapped, context, fit=fit, profile=profile)

    def map(self, function, items, progress=None):
        return self.inner.map(function, items, progress=progress)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CachingExecutor(inner={self.inner!r}, "
                f"hits={self.hits}, misses={self.misses})")


class ProcessExecutor(Executor):
    """Schedule steps and job lists across a ``multiprocessing`` pool.

    Both executor duties escape the GIL:

    * :meth:`run_plan` runs the same topological ready-queue as
      :class:`ThreadedExecutor`, but dispatches each ready step's *payload*
      (a picklable work unit built by the pipeline — see
      :attr:`StepNode.payload`) to a ``ProcessPoolExecutor`` worker together
      with only the context variables the step reads. Mutated primitive
      state (a fit, or an incremental streaming update) is returned and
      grafted back through :attr:`StepNode.absorb`, so a pipeline fitted
      through the process backend is indistinguishable from a serial fit.
    * :meth:`map` fans a job list out across the pool — the benchmark's
      pipeline × signal sweep. The mapped function and items must be
      picklable (module-level functions, plain-data items); an unpicklable
      *function* degrades to a serial in-process run with a
      ``RuntimeWarning`` rather than failing the fan-out.

    Large numpy arrays travel through POSIX shared memory segments instead
    of the worker pipe — in *both* directions: inputs via
    :func:`encode_for_transfer` (parent creates, parent unlinks after the
    task), outputs via :func:`encode_result` in the worker (worker creates,
    parent unlinks on receipt through :func:`decode_and_release`).
    Everything else — and every array when shared memory is unavailable —
    falls back to pickle. Per-step ``elapsed`` / ``memory`` timings are
    measured inside the worker, so they report the step's own cost without
    IPC overhead.

    The pool's start method follows the platform default unless the
    ``REPRO_MP_START`` environment variable names one explicitly
    (``fork`` / ``spawn`` / ``forkserver``) — the hook CI uses to prove
    parity under macOS-default ``spawn`` semantics.

    Two safety fallbacks keep the executor composable:

    * inside a worker process (nested process fan-out, e.g. a benchmark job
      whose pipeline also selects ``"process"``) it degrades to serial
      execution rather than forking grandchildren;
    * a plan whose nodes carry no payloads (hand-built closure plans, or
      plans wrapped by :class:`CachingExecutor`, whose memo store lives in
      the parent) runs serially as well.

    Args:
        max_workers: pool size (default: ``min(cpu_count, 8, n_items)``).
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ExecutorError("max_workers must be at least 1")
        self.max_workers = max_workers

    def _pool_size(self, n_items: int) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return max(1, min(os.cpu_count() or 1, 8, n_items))

    # -- a pool handle must never ride along with a pickled pipeline
    def __getstate__(self) -> dict:
        return {"max_workers": self.max_workers}

    def __setstate__(self, state: dict) -> None:
        self.max_workers = state["max_workers"]

    def run_plan(self, plan, context, fit=False, profile=False):
        if _in_worker_process() or any(node.payload is None for node in plan):
            return SerialExecutor().run_plan(plan, context, fit=fit,
                                             profile=profile)

        remaining = {name: set(deps) for name, deps in plan.dependencies.items()}
        dependents: Dict[str, set] = {node.name: set() for node in plan}
        for name, deps in plan.dependencies.items():
            for dep in deps:
                dependents[dep].add(name)
        by_name = {node.name: node for node in plan}

        timings: Dict[str, dict] = {}
        failure: List[BaseException] = []
        in_flight: Dict[object, Tuple[str, list]] = {}

        sweep_orphan_segments()
        with ProcessPoolExecutor(max_workers=self._pool_size(len(plan)),
                                 mp_context=_mp_context()) as pool:
            def dispatch(name: str) -> None:
                node = by_name[name]
                segments: list = []
                # Missing read variables are omitted (not shipped as None),
                # so the worker raises the same "needs variable" error the
                # in-process executors produce.
                subcontext = {var: context[var] for var in node.reads
                              if var in context}
                encoded = encode_for_transfer(subcontext, segments)
                future = pool.submit(
                    _process_plan_worker, node.payload(), encoded, fit, profile
                )
                in_flight[future] = (name, segments)

            for name in [node.name for node in plan if not remaining[node.name]]:
                dispatch(name)

            while in_flight:
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    name, segments = in_flight.pop(future)
                    release_transfers(segments)
                    error = future.exception()
                    if error is not None:
                        failure.append(error)
                        continue
                    updates, timing, state = future.result()
                    context.update(decode_and_release(updates))
                    timings[name] = timing
                    node = by_name[name]
                    if state is not None and node.absorb is not None:
                        node.absorb(state)
                    for dependent in dependents[name]:
                        remaining[dependent].discard(name)
                        if not remaining[dependent] and not failure:
                            dispatch(dependent)
                if failure:
                    # Drain in-flight work, then surface the first error.
                    # Results that still completed are decoded and dropped
                    # so their return segments are reclaimed too.
                    wait(set(in_flight))
                    for future, (_, segments) in in_flight.items():
                        release_transfers(segments)
                        if future.exception() is None:
                            with contextlib.suppress(Exception):
                                decode_and_release(future.result()[0])
                    in_flight = {}
        if failure:
            raise self._surface(failure[0])

        ordered = {node.name: timings[node.name] for node in plan}
        return context, ordered

    def map(self, function, items, progress=None):
        items = list(items)
        if not items:
            return []
        if _in_worker_process():
            return SerialExecutor().map(function, items, progress=progress)
        try:
            pickle.dumps(function)
        except Exception:
            # A closure (e.g. the streaming layer's background-refit hook)
            # cannot cross the process boundary; degrade to a correct serial
            # run instead of failing the whole fan-out.
            warnings.warn(
                "ProcessExecutor.map received an unpicklable function; "
                "running serially. Use a module-level function to "
                "parallelize across processes.",
                RuntimeWarning, stacklevel=2,
            )
            return SerialExecutor().map(function, items, progress=progress)

        results: List = [None] * len(items)
        in_flight: Dict[object, Tuple[int, list]] = {}
        pool_size = self._pool_size(len(items))
        sweep_orphan_segments()
        # Encode lazily, a bounded window at a time: shared-memory segments
        # (a finite system resource — /dev/shm) exist only for items that
        # are running or next in line, not for the whole job list.
        window = pool_size * 2
        next_index = 0
        with ProcessPoolExecutor(max_workers=pool_size,
                                 mp_context=_mp_context()) as pool:
            def submit_next() -> None:
                nonlocal next_index
                segments: list = []
                encoded = encode_for_transfer(items[next_index], segments)
                future = pool.submit(_process_map_worker, function, encoded)
                in_flight[future] = (next_index, segments)
                next_index += 1

            try:
                while next_index < len(items) and len(in_flight) < window:
                    submit_next()
                while in_flight:
                    done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                    for future in done:
                        index, segments = in_flight.pop(future)
                        release_transfers(segments)
                        error = future.exception()
                        if error is not None:
                            raise self._surface(error)
                        results[index] = decode_and_release(future.result())
                        if progress is not None:
                            progress(index, results[index])
                        if next_index < len(items):
                            submit_next()
            finally:
                # Settle every abandoned future first (cancel what has not
                # started, join what has), then reclaim both the input
                # segments and the return segments of results that
                # completed but will never be consumed.
                pool.shutdown(cancel_futures=True)
                for future, (_, segments) in in_flight.items():
                    release_transfers(segments)
                    if not future.cancelled() and future.exception() is None:
                        with contextlib.suppress(Exception):
                            decode_and_release(future.result())
        return results

    @staticmethod
    def _surface(error: BaseException) -> BaseException:
        """Wrap pickling failures in an actionable message."""
        if isinstance(error, (pickle.PicklingError, AttributeError)) \
                and "pickle" in str(error).lower():
            return ExecutorError(
                "The process executor requires picklable jobs: use "
                "module-level functions and plain-data items (got: "
                f"{error})"
            )
        return error


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
EXECUTORS: Dict[str, type] = {
    SerialExecutor.name: SerialExecutor,
    ThreadedExecutor.name: ThreadedExecutor,
    CachingExecutor.name: CachingExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

#: Executors that live in heavier subsystems and register themselves into
#: :data:`EXECUTORS` when their module first loads. Resolved lazily so
#: this core module never imports them at load time (the distributed tier
#: imports *this* module — eager registration would be a cycle).
_LAZY_EXECUTORS: Dict[str, str] = {
    "distributed": "repro.distributed.executor",
}


def _load_lazy_executor(name: str) -> None:
    if name in EXECUTORS or name not in _LAZY_EXECUTORS:
        return
    import importlib

    importlib.import_module(_LAZY_EXECUTORS[name])


def list_executors() -> List[str]:
    """Names of the registered executor strategies."""
    return sorted(set(EXECUTORS) | set(_LAZY_EXECUTORS))


def get_executor(executor: Optional[Union[str, Executor, type]] = None,
                 **options) -> Executor:
    """Resolve an executor specification to an :class:`Executor` instance.

    Accepts ``None`` (serial default), a registered name, an ``Executor``
    subclass, or an already-built instance (returned unchanged).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, type) and issubclass(executor, Executor):
        return executor(**options)
    if isinstance(executor, str):
        _load_lazy_executor(executor)
        if executor not in EXECUTORS:
            raise ExecutorError(
                f"Unknown executor {executor!r}. Registered: {list_executors()}"
            )
        return EXECUTORS[executor](**options)
    raise ExecutorError(f"Cannot build an executor from {type(executor).__name__}")
