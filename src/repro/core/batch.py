"""Helpers for the batched detection data plane.

Fused ``produce_batch`` implementations want to run one vectorized NumPy
pass over ``N`` stacked signals, but a batch is allowed to mix signals of
different lengths (and therefore array shapes). The helpers here split a
batch into *shape groups* — maximal index sets whose arrays stack into one
``(n_group, ...)`` array — so a fused implementation vectorizes within
each group and reassembles the per-signal outputs in original batch order.

Bitwise parity note: stacking same-shaped signals and applying elementwise
ops, row-wise reductions along the per-signal axes, or pure indexing is
bitwise-identical to the per-signal computation (NumPy applies the same
kernels per row). Operations that would *reorder floating-point work
across signals* (e.g. reductions over the batch axis) must not be used in
fused implementations — the batch plane guarantees results identical to a
per-signal loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["shape_groups", "batched_ewma", "find_sequences_mask"]


def shape_groups(values: Sequence[np.ndarray],
                 keys: Sequence = None) -> List[Tuple[List[int], np.ndarray]]:
    """Split a batch into stackable groups of identical shape (and key).

    Args:
        values: one array per signal.
        keys: optional extra grouping keys (one per signal); signals only
            share a group when their key compares equal as well — used e.g.
            to group signals whose *timestamp grids* match, not just their
            shapes.

    Returns:
        ``[(indices, stacked)]`` where ``stacked[j]`` is
        ``values[indices[j]]``; the union of all ``indices`` lists is
        ``range(len(values))``. Groups preserve first-seen order.
    """
    groups: Dict[tuple, List[int]] = {}
    arrays = [np.asarray(value) for value in values]
    for index, array in enumerate(arrays):
        group_key = (array.shape, str(array.dtype))
        if keys is not None:
            group_key += (keys[index],)
        groups.setdefault(group_key, []).append(index)
    return [(indices, np.stack([arrays[i] for i in indices]))
            for indices in groups.values()]


def batched_ewma(errors: np.ndarray, smoothing_window: int) -> np.ndarray:
    """Exponentially-weighted moving average over axis 1 of ``(N, T)``.

    One time-step loop with vector arithmetic across the batch: each
    signal's recursion performs exactly the same scalar operations as
    :func:`repro.primitives.postprocessing.errors.smooth_errors`, so the
    result is bitwise-identical per row.
    """
    errors = np.asarray(errors, dtype=float)
    if smoothing_window <= 1 or errors.shape[1] == 0:
        return errors.copy()
    alpha = 2.0 / (smoothing_window + 1.0)
    smoothed = np.empty_like(errors)
    smoothed[:, 0] = errors[:, 0]
    for i in range(1, errors.shape[1]):
        smoothed[:, i] = alpha * errors[:, i] + (1.0 - alpha) * smoothed[:, i - 1]
    return smoothed


def find_sequences_mask(above: np.ndarray) -> List[Tuple[int, int]]:
    """Vectorized equivalent of the scan in ``_find_sequences``.

    Returns the inclusive ``(start, end)`` index pairs of contiguous True
    runs, computed from the flag transitions instead of a Python scan —
    index-exact, so downstream severity arithmetic sees identical slices.
    """
    above = np.asarray(above, dtype=bool)
    if not above.size:
        return []
    edges = np.diff(above.astype(np.int8))
    starts = np.flatnonzero(edges == 1) + 1
    ends = np.flatnonzero(edges == -1)
    if above[0]:
        starts = np.concatenate(([0], starts))
    if above[-1]:
        ends = np.concatenate((ends, [len(above) - 1]))
    return list(zip(starts.tolist(), ends.tolist()))
