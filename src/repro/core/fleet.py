"""The fleet streaming plane: cross-stream batching + tiered refits.

The paper's deployment story is a *fleet* — many live signals served
continuously, with drift-triggered refits (§5). PRs 2–6 built the two
halves separately: :class:`~repro.core.stream.StreamRunner` serves one
signal incrementally, and the batch/fused plane (``detect_batch``,
:class:`~repro.core.plan.FusedStep`, arena buffers) amortizes plan
execution across signals — but only offline. This module joins them:

* :class:`FleetStreamRunner` groups concurrent streams that share a
  fitted pipeline, coalesces their pending micro-batches each scheduling
  round, and executes **one stream-batch plan per group** — stateless
  steps run once over the stacked ``(n_streams, window)`` batch (through
  the same ``produce_batch`` / fused ``FusedStep`` machinery as
  ``detect_batch``), while incremental steps keep per-stream state in a
  :class:`~repro.core.plan.LaneRegistry` and run per lane. The per-lane
  detections demux back into each stream's stable-id
  :class:`~repro.core.stream.StreamEvent` reconciliation, so on the exact
  plane fleet events are **bitwise identical** to N independent runners;
  ``exact=False`` opts into the fused NN forwards under the same
  tolerance regime as the offline fused plane.
* :class:`TierPolicy` + :class:`StreamScheduler` allocate the refit
  budget by urgency tier (drift score, time-since-refit, SLA deadline)
  with per-tier budget floors, so a drift storm on hot streams can never
  starve the cold tier's periodic backfill; a :class:`StandbyCache`
  extends the single-stream ping-pong swap (PR 5) fleet-wide — refits
  land on warm standby pipelines whose fit-mode plans are already
  compiled, and the displaced serving pipeline becomes the next standby.
"""

from __future__ import annotations

import copy
import json
import threading
import time
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.executor import observe_step_timings
from repro.core.pipeline import Pipeline
from repro.core.plan import LaneRegistry
from repro.core.stream import StreamEvent, StreamRunner
from repro.exceptions import PipelineError, StreamError

__all__ = ["FleetLane", "FleetGroup", "FleetStreamRunner", "TierPolicy",
           "StandbyCache", "StreamScheduler"]


class FleetLane:
    """One stream's seat in the fleet: runner, local state, refit status.

    The lane owns everything that is *per stream*: the
    :class:`~repro.core.stream.StreamRunner` (sliding window, event
    registry, drift monitor), its private copies of every incremental
    (``supports_stream``) primitive, the pending micro-batch queue, and
    the scheduler's tier/refit bookkeeping. Everything *shared* lives on
    the lane's :class:`FleetGroup`.
    """

    def __init__(self, lane_id: str, runner: StreamRunner,
                 group: "FleetGroup", sla_deadline: Optional[float],
                 now: float):
        self.lane_id = lane_id
        self.runner = runner
        self.group = group
        self.sla_deadline = sla_deadline
        self.primitives = self._local_primitives(group.base)
        self.pending: deque = deque()
        self.idle = threading.Event()
        self.idle.set()
        self.error: Optional[str] = None
        self.closed = False
        # Scheduler bookkeeping (clock units are the scheduler's).
        self.tier = "cold"
        self.last_refit = now
        self.refit_in_flight = False

    @staticmethod
    def _local_primitives(base: Pipeline) -> list:
        """Per-lane copies of the incremental primitives, shared otherwise.

        An independent ``StreamRunner`` mutates its pipeline's own
        ``supports_stream`` primitives on every window; in a fleet those
        running statistics belong to exactly one stream, so each lane
        deep-copies them from the *freshly fitted* base — starting from
        the identical state an independent runner would start from —
        while stateless fitted steps stay the shared base instances.
        """
        return [copy.deepcopy(cell[1]) if cell[1].supports_stream
                else cell[1] for cell in base._primitives]

    def rebind(self, group: "FleetGroup") -> None:
        """Move the lane onto ``group`` after a refit swapped its pipeline."""
        self.group = group
        self.primitives = self._local_primitives(group.base)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"FleetLane(id={self.lane_id!r}, tier={self.tier!r}, "
                f"pending={len(self.pending)})")


class FleetGroup:
    """Streams sharing one fitted pipeline, served by one stream-batch plan.

    Grouping is by *fitted pipeline object*: sharing a template is not
    enough — batched stateless steps run the base pipeline's fitted
    primitives once over the whole stack, which is only equivalent to the
    per-stream loop when every member stream would have used those same
    fitted instances. Streams fitted separately land in their own
    (singleton) groups and still benefit from tiered refit scheduling.
    """

    def __init__(self, base: Pipeline, exact: bool,
                 precision: Optional[str]):
        self.base = base
        self.exact = exact
        self.precision = precision
        self.registry = LaneRegistry()
        self.lanes: List[FleetLane] = []

    def detect(self, lanes: List[FleetLane]) -> List[List[tuple]]:
        """Run one stream-batch plan over the participating lanes' windows.

        Returns one ``partial_detect``-shaped detection list per lane, in
        lane order, ready to demux into each lane's event reconciliation.
        """
        self.registry.set_rows([lane.primitives for lane in lanes])
        context = {
            "data": [lane.runner.window for lane in lanes],
            "events": [None] * len(lanes),
        }
        plan = self.base.compiler.plan(
            "stream_batch", exact=self.exact, precision=self.precision,
            registry=self.registry)
        context, timings = self.base.executor.run_plan(
            plan, context, fit=False)
        self.base.step_timings = timings
        observe_step_timings(timings)
        anomalies = context.get("anomalies")
        if anomalies is None:
            anomalies = [None] * len(lanes)
        return [Pipeline._format_anomalies(entry) for entry in anomalies]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"FleetGroup(pipeline={self.base.name!r}, "
                f"lanes={len(self.lanes)})")


def _percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), q))


class FleetStreamRunner:
    """Serve many concurrent streams through coalesced stream-batch plans.

    Each scheduling round (:meth:`run_round`) takes **one** pending
    micro-batch per stream — batches are coalesced *across* streams,
    never within one stream, which is what keeps per-send detection
    semantics (and therefore event identity) intact — groups the
    participating streams by shared pipeline, and executes one
    stream-batch plan per group. Streams whose queues run deeper drain
    over consecutive rounds (stragglers never block the fleet).

    Args:
        exact: ``True`` pins the exact plane — results bitwise identical
            to N independent :class:`~repro.core.stream.StreamRunner`\\ s.
            ``False`` opts into fused NN forwards (tolerance parity, same
            regime as ``detect_batch(exact=False)``).
        precision: optional ``"float32"`` reduced-precision plane
            (requires ``exact=False``).
        coalesce: ``False`` disables cross-stream batching — every lane
            runs its own plan per round. This is the benchmark's negative
            control: it must forfeit the fleet speedup.
        max_streams: capacity bound on registered streams.
        clock: injectable monotonic clock (tests pin it).
    """

    def __init__(self, exact: bool = True, precision: Optional[str] = None,
                 coalesce: bool = True, max_streams: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if precision not in (None, "float32"):
            raise PipelineError(
                f"Unknown precision {precision!r}; expected None or "
                "'float32'"
            )
        if precision is not None and exact:
            raise PipelineError(
                "precision='float32' is a reduced-precision mode and "
                "requires exact=False"
            )
        self.exact = bool(exact)
        self.precision = precision
        self.coalesce = bool(coalesce)
        self.max_streams = int(max_streams)
        self._clock = clock
        self._lock = threading.RLock()
        self._lanes: Dict[str, FleetLane] = {}
        self._groups: Dict[int, FleetGroup] = {}
        self._lane_counter = 0
        self._rounds = 0
        self._plan_runs = 0
        self._lanes_served = 0
        self._batches_in = 0
        self._occupancy: Counter = Counter()
        self._lag_samples: deque = deque(maxlen=2048)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def _group_for(self, base: Pipeline) -> FleetGroup:
        group = self._groups.get(id(base))
        if group is None:
            group = FleetGroup(base, self.exact, self.precision)
            self._groups[id(base)] = group
        return group

    def add_stream(self, pipeline, stream_id: Optional[str] = None,
                   window_size: int = 500, warmup: int = 32,
                   drift_detector="default", drift_cooldown: int = 50,
                   sla_deadline: Optional[float] = None,
                   on_event: Optional[Callable[[StreamEvent], None]] = None,
                   ) -> FleetLane:
        """Register a stream served by ``pipeline`` (fitted; Sintel ok).

        Streams registered with the *same fitted pipeline object* join
        one group and are batched together. Returns the lane handle used
        with :meth:`ingest` / :meth:`close_stream`.
        """
        base = getattr(pipeline, "pipeline", pipeline)
        with self._lock:
            if len(self._lanes) >= self.max_streams:
                raise StreamError(
                    f"Fleet capacity reached ({self.max_streams} streams)"
                )
            if stream_id is None:
                self._lane_counter += 1
                stream_id = f"lane-{self._lane_counter}"
            if stream_id in self._lanes:
                raise StreamError(f"Stream {stream_id!r} already registered")
            runner = StreamRunner(
                base, window_size=window_size, warmup=warmup,
                drift_detector=drift_detector, drift_cooldown=drift_cooldown,
                retrain=False, on_event=on_event,
            )
            group = self._group_for(getattr(runner, "_pipeline"))
            lane = FleetLane(stream_id, runner, group, sla_deadline,
                             self._clock())
            group.lanes.append(lane)
            self._lanes[stream_id] = lane
            return lane

    def lane(self, lane_id: str) -> FleetLane:
        try:
            return self._lanes[lane_id]
        except KeyError:
            raise StreamError(f"Unknown stream {lane_id!r}") from None

    def lanes(self) -> List[FleetLane]:
        with self._lock:
            return list(self._lanes.values())

    # ------------------------------------------------------------------ #
    # ingestion + rounds
    # ------------------------------------------------------------------ #
    def ingest(self, lane_id: str, batch) -> int:
        """Queue one micro-batch for ``lane_id``; returns its queue depth.

        Validation happens on the scheduling round (like the session
        drainer): a malformed batch surfaces as the lane's ``error``.
        """
        lane = self.lane(lane_id)
        if lane.closed:
            raise StreamError("The stream has been closed")
        lane.idle.clear()
        lane.pending.append((batch, self._clock()))
        self._batches_in += 1
        return len(lane.pending)

    def has_pending(self) -> bool:
        with self._lock:
            return any(lane.pending for lane in self._lanes.values()
                       if not lane.closed and not lane.error)

    def run_round(self) -> Dict[str, List[StreamEvent]]:
        """One scheduling round: ingest ≤1 batch per lane, detect per group.

        Returns ``{lane_id: changed events}`` for every lane that went
        through detection this round.
        """
        with self._lock:
            participants: Dict[int, List[FleetLane]] = {}
            changed: Dict[str, List[StreamEvent]] = {}
            now = self._clock
            for lane in self._lanes.values():
                if lane.closed or lane.error or not lane.pending:
                    continue
                batch, enqueued = lane.pending.popleft()
                try:
                    absorbed = lane.runner._ingest(batch)
                except Exception as error:  # noqa: BLE001 - lane-scoped
                    lane.error = str(error)
                    lane.pending.clear()
                    continue
                self._lag_samples.append(now() - enqueued)
                if absorbed and lane.runner.ready:
                    participants.setdefault(
                        id(lane.group), []).append(lane)
            for members in participants.values():
                group = members[0].group
                cohorts = [members] if self.coalesce \
                    else [[lane] for lane in members]
                for cohort in cohorts:
                    try:
                        detections = group.detect(cohort)
                    except Exception as error:  # noqa: BLE001 - lane-scoped
                        for lane in cohort:
                            lane.error = str(error)
                        continue
                    self._plan_runs += 1
                    self._lanes_served += len(cohort)
                    self._occupancy[len(cohort)] += 1
                    for lane, detection in zip(cohort, detections):
                        changed[lane.lane_id] = \
                            lane.runner.apply_detections(detection)
            for lane in self._lanes.values():
                if not lane.pending:
                    lane.idle.set()
            self._rounds += 1
            return changed

    def run_until_idle(self, max_rounds: Optional[int] = None,
                       ) -> Dict[str, List[StreamEvent]]:
        """Run rounds until every queue drains; merged changed events."""
        merged: Dict[str, List[StreamEvent]] = {}
        rounds = 0
        while self.has_pending():
            if max_rounds is not None and rounds >= max_rounds:
                break
            for lane_id, events in self.run_round().items():
                merged.setdefault(lane_id, []).extend(events)
            rounds += 1
        return merged

    def wait_idle(self, lane_id: str, timeout: Optional[float] = None) -> bool:
        """Block until the lane's queue has fully drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        lane = self.lane(lane_id)
        while True:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not lane.idle.wait(remaining):
                return False
            if not lane.pending:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    # ------------------------------------------------------------------ #
    # refit support (driven by StreamScheduler)
    # ------------------------------------------------------------------ #
    def regroup(self, lane: FleetLane, base: Pipeline) -> None:
        """Rebind ``lane`` to the group serving ``base`` (post-refit).

        A refitted lane leaves its shared group — its new fitted state is
        its own — and lands in the group keyed by the new pipeline
        (usually a fresh singleton). Empty groups are dropped.
        """
        with self._lock:
            old = lane.group
            if lane in old.lanes:
                old.lanes.remove(lane)
            if not old.lanes:
                self._groups.pop(id(old.base), None)
            group = self._group_for(base)
            group.lanes.append(lane)
            lane.rebind(group)

    # ------------------------------------------------------------------ #
    # lifecycle + observability
    # ------------------------------------------------------------------ #
    def close_stream(self, lane_id: str) -> List[StreamEvent]:
        """Close one stream; returns the events closed by the shutdown."""
        with self._lock:
            lane = self.lane(lane_id)
            if lane.closed:
                return []
            lane.closed = True
            lane.pending.clear()
            lane.idle.set()
            group = lane.group
            if lane in group.lanes:
                group.lanes.remove(lane)
            if not group.lanes:
                self._groups.pop(id(group.base), None)
            del self._lanes[lane_id]
        return lane.runner.close()

    def close(self) -> Dict[str, List[StreamEvent]]:
        """Close every stream; ``{lane_id: closed events}``."""
        closed = {}
        for lane in self.lanes():
            closed[lane.lane_id] = self.close_stream(lane.lane_id)
        return closed

    def stats(self) -> dict:
        """JSON-serializable snapshot of the fleet's health."""
        with self._lock:
            lanes = list(self._lanes.values())
            occupancy = dict(self._occupancy)
            plan_runs = self._plan_runs
            lanes_served = self._lanes_served
            lag = list(self._lag_samples)
            groups = len(self._groups)
            rounds = self._rounds
            batches_in = self._batches_in
        return {
            "streams": len(lanes),
            "groups": groups,
            "rounds": rounds,
            "batches_in": batches_in,
            "plan_runs": plan_runs,
            "lanes_served": lanes_served,
            "coalesce_ratio": (lanes_served / plan_runs) if plan_runs else 0.0,
            "occupancy": {str(size): count
                          for size, count in sorted(occupancy.items())},
            "pending": sum(len(lane.pending) for lane in lanes),
            "errors": sum(1 for lane in lanes if lane.error),
            "ingest_lag_p50": _percentile(lag, 50),
            "ingest_lag_p95": _percentile(lag, 95),
            "exact": self.exact,
            "precision": self.precision,
            "coalesce": self.coalesce,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"FleetStreamRunner(streams={len(self._lanes)}, "
                f"groups={len(self._groups)}, exact={self.exact})")


class TierPolicy:
    """Assign refit urgency tiers and guarantee per-tier budget floors.

    The shape follows due-date tier scheduling: every lane carries an SLA
    deadline (maximum tolerated staleness since its last refit; per-lane
    override or the policy default — ``float("inf")`` means "no SLA,
    backfill only"), and each round lanes classify as

    * ``hot``  — confirmed drift pending, or SLA already blown;
    * ``warm`` — approaching the deadline (past ``warm_fraction`` of it):
      refitting *now* is cheap insurance against going hot;
    * ``cold`` — fresh, or no SLA at all; refreshed by the periodic
      backfill every ``backfill_interval`` seconds.

    ``budget_floors`` reserves refit slots per tier each round: under a
    sustained hot-tier storm the cold tier still receives its floor, so
    backfill progress is starvation-free (and vice versa — floors cap
    how much of the budget background backfill can claim from hot SLAs).
    """

    TIERS = ("hot", "warm", "cold")

    def __init__(self, sla_deadline: float = 600.0,
                 warm_fraction: float = 0.5,
                 backfill_interval: float = 3600.0,
                 budget_floors: Optional[Dict[str, int]] = None):
        if not 0.0 < warm_fraction <= 1.0:
            raise ValueError("warm_fraction must be in (0, 1]")
        self.sla_deadline = float(sla_deadline)
        self.warm_fraction = float(warm_fraction)
        self.backfill_interval = float(backfill_interval)
        self.budget_floors = dict(budget_floors
                                  if budget_floors is not None
                                  else {"hot": 1, "warm": 1, "cold": 1})
        for tier in self.budget_floors:
            if tier not in self.TIERS:
                raise ValueError(f"Unknown tier {tier!r} in budget_floors")

    def deadline(self, lane: FleetLane) -> float:
        return (self.sla_deadline if lane.sla_deadline is None
                else float(lane.sla_deadline))

    def tier(self, lane: FleetLane, now: float) -> str:
        """Classify one lane: drift and SLA pressure decide heat."""
        if lane.runner.drift_pending:
            return "hot"
        age = now - lane.last_refit
        deadline = self.deadline(lane)
        if age >= deadline:
            return "hot"
        if age >= self.warm_fraction * deadline:
            return "warm"
        return "cold"

    def refit_due(self, lane: FleetLane, now: float) -> bool:
        """Whether the lane should refit this round (given budget)."""
        tier = self.tier(lane, now)
        if tier in ("hot", "warm"):
            return True
        return (now - lane.last_refit) >= self.backfill_interval

    def allocate(self, due_by_tier: Dict[str, List[FleetLane]],
                 slots: int) -> List[tuple]:
        """Pick ``(tier, lane)`` refits for this round's free slots.

        Floors first — round-robin across tiers so an oversubscribed
        budget still shares fairly — then leftover slots drain by
        urgency (hot → warm → cold).
        """
        queues = {tier: list(due_by_tier.get(tier, ()))
                  for tier in self.TIERS}
        floors = {tier: min(self.budget_floors.get(tier, 0),
                            len(queues[tier]))
                  for tier in self.TIERS}
        selected: List[tuple] = []
        while len(selected) < slots and any(
                floors[tier] > 0 and queues[tier] for tier in self.TIERS):
            for tier in self.TIERS:
                if len(selected) >= slots:
                    break
                if floors[tier] > 0 and queues[tier]:
                    selected.append((tier, queues[tier].pop(0)))
                    floors[tier] -= 1
        for tier in self.TIERS:
            while queues[tier] and len(selected) < slots:
                selected.append((tier, queues[tier].pop(0)))
        return selected


class StandbyCache:
    """Warm standby pipelines keyed by template + hyperparameters.

    Extends the single-stream ping-pong swap fleet-wide: a refit acquires
    a standby (a previously displaced serving pipeline when one is
    cached — its fit-mode plan is already compiled, so the refit only
    swaps fresh primitives into existing cells — or a cold clone
    otherwise), and after the swap the displaced pipeline is released
    back as the next warm standby for any lane running the same
    template/λ. Capacity-bounded; eviction just drops the pipeline.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._cache: Dict[str, deque] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(pipeline: Pipeline) -> str:
        return json.dumps(
            {"spec": pipeline.spec,
             "hyperparameters": pipeline.get_hyperparameters()},
            sort_keys=True, default=repr)

    def acquire(self, pipeline: Pipeline) -> Pipeline:
        """A standby for ``pipeline``'s template: warm when cached."""
        key = self._key(pipeline)
        with self._lock:
            bucket = self._cache.get(key)
            if bucket:
                self.hits += 1
                self._size -= 1
                return bucket.popleft()
            self.misses += 1
        return pipeline.clone()

    def release(self, pipeline: Pipeline) -> bool:
        """Return a displaced pipeline to the warm pool (False = evicted)."""
        key = self._key(pipeline)
        with self._lock:
            if self._size >= self.capacity:
                self.evictions += 1
                return False
            self._cache.setdefault(key, deque()).append(pipeline)
            self._size += 1
            return True

    @property
    def size(self) -> int:
        return self._size

    def stats(self) -> dict:
        with self._lock:
            return {"size": self._size, "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


class StreamScheduler:
    """Tier-aware scheduling loop over a :class:`FleetStreamRunner`.

    Each :meth:`run_round` runs one fleet detection round, re-tiers every
    lane, and launches up to ``refit_budget`` refits chosen by the
    :class:`TierPolicy` (floors first, then urgency). Refits run on a
    bounded background pool against :class:`StandbyCache` standbys and
    swap atomically via
    :meth:`~repro.core.stream.StreamRunner.adopt_pipeline`; the refitted
    lane regroups onto its new pipeline. ``refit_sync=True`` runs refits
    inline on the scheduling thread — deterministic, used by tests and
    benchmarks.
    """

    def __init__(self, fleet: Optional[FleetStreamRunner] = None,
                 policy: Optional[TierPolicy] = None,
                 refit_budget: int = 2,
                 standby_cache: Optional[StandbyCache] = None,
                 refit_sync: bool = False,
                 clock: Callable[[], float] = time.monotonic,
                 **fleet_options):
        if refit_budget < 0:
            raise ValueError("refit_budget must be >= 0")
        self.fleet = fleet if fleet is not None \
            else FleetStreamRunner(clock=clock, **fleet_options)
        self.policy = policy if policy is not None else TierPolicy()
        self.standby = standby_cache if standby_cache is not None \
            else StandbyCache()
        self.refit_budget = int(refit_budget)
        self.refit_sync = bool(refit_sync)
        self._clock = clock
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._in_flight = 0
        self.refits_by_tier = {tier: 0 for tier in TierPolicy.TIERS}
        self.refit_errors = 0
        self._queue_depth = {tier: 0 for tier in TierPolicy.TIERS}

    # ------------------------------------------------------------------ #
    # passthrough surface
    # ------------------------------------------------------------------ #
    def add_stream(self, pipeline, **options) -> FleetLane:
        lane = self.fleet.add_stream(pipeline, **options)
        lane.last_refit = self._clock()
        return lane

    def ingest(self, lane_id: str, batch) -> int:
        return self.fleet.ingest(lane_id, batch)

    def lane(self, lane_id: str) -> FleetLane:
        return self.fleet.lane(lane_id)

    def has_pending(self) -> bool:
        return self.fleet.has_pending()

    def wait_idle(self, lane_id: str,
                  timeout: Optional[float] = None) -> bool:
        return self.fleet.wait_idle(lane_id, timeout)

    # ------------------------------------------------------------------ #
    # the scheduling loop
    # ------------------------------------------------------------------ #
    def run_round(self) -> Dict[str, List[StreamEvent]]:
        """One fleet round followed by tier-aware refit scheduling."""
        changed = self.fleet.run_round()
        self.schedule_refits()
        return changed

    def run_until_idle(self, max_rounds: Optional[int] = None,
                       ) -> Dict[str, List[StreamEvent]]:
        merged: Dict[str, List[StreamEvent]] = {}
        rounds = 0
        while self.fleet.has_pending():
            if max_rounds is not None and rounds >= max_rounds:
                break
            for lane_id, events in self.run_round().items():
                merged.setdefault(lane_id, []).extend(events)
            rounds += 1
        return merged

    def schedule_refits(self) -> List[str]:
        """Re-tier every lane and launch this round's budgeted refits."""
        now = self._clock()
        due: Dict[str, List[FleetLane]] = {tier: []
                                           for tier in TierPolicy.TIERS}
        for lane in self.fleet.lanes():
            if lane.closed or lane.error:
                continue
            lane.tier = self.policy.tier(lane, now)
            if lane.refit_in_flight or not lane.runner.ready:
                continue
            if self.policy.refit_due(lane, now):
                due[lane.tier].append(lane)
        self._queue_depth = {tier: len(lanes)
                             for tier, lanes in due.items()}
        with self._lock:
            slots = max(0, self.refit_budget - self._in_flight)
        launched = []
        for tier, lane in self.policy.allocate(due, slots):
            self._launch_refit(tier, lane)
            launched.append(lane.lane_id)
        return launched

    def _launch_refit(self, tier: str, lane: FleetLane) -> None:
        lane.refit_in_flight = True
        lane.runner.clear_drift()
        standby = self.standby.acquire(lane.runner.pipeline)
        snapshot = lane.runner.window.copy()
        if self.refit_sync:
            self._refit(tier, lane, standby, snapshot)
            return
        with self._lock:
            self._in_flight += 1
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, self.refit_budget),
                    thread_name_prefix="sintel-fleet-refit",
                )
            pool = self._pool
        pool.submit(self._refit_async, tier, lane, standby, snapshot)

    def _refit_async(self, tier: str, lane: FleetLane, standby: Pipeline,
                     snapshot: np.ndarray) -> None:
        try:
            self._refit(tier, lane, standby, snapshot)
        finally:
            with self._lock:
                self._in_flight -= 1

    def _refit(self, tier: str, lane: FleetLane, standby: Pipeline,
               snapshot: np.ndarray) -> None:
        try:
            standby.fit(snapshot)
        except Exception as error:  # noqa: BLE001 - surfaced via state
            lane.runner.retrain_error = str(error)
            self.refit_errors += 1
            lane.refit_in_flight = False
            return
        previous = lane.runner.adopt_pipeline(standby)
        self.fleet.regroup(lane, standby)
        self.standby.release(previous)
        lane.last_refit = self._clock()
        self.refits_by_tier[tier] = self.refits_by_tier.get(tier, 0) + 1
        lane.refit_in_flight = False

    # ------------------------------------------------------------------ #
    # lifecycle + observability
    # ------------------------------------------------------------------ #
    def close_stream(self, lane_id: str) -> List[StreamEvent]:
        return self.fleet.close_stream(lane_id)

    def close(self) -> Dict[str, List[StreamEvent]]:
        closed = self.fleet.close()
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        return closed

    def tiers(self) -> Dict[str, int]:
        """Current lane count per tier."""
        counts = {tier: 0 for tier in TierPolicy.TIERS}
        for lane in self.fleet.lanes():
            counts[lane.tier] = counts.get(lane.tier, 0) + 1
        return counts

    def stats(self) -> dict:
        """Fleet stats merged with the scheduler's tier/refit view."""
        merged = self.fleet.stats()
        with self._lock:
            in_flight = self._in_flight
        merged.update({
            "tiers": self.tiers(),
            "refit_queue_depth": dict(self._queue_depth),
            "refits_by_tier": dict(self.refits_by_tier),
            "refit_errors": self.refit_errors,
            "refits_in_flight": in_flight,
            "refit_budget": self.refit_budget,
            "standby": self.standby.stats(),
        })
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StreamScheduler(streams={len(self.fleet.lanes())}, "
                f"budget={self.refit_budget})")
