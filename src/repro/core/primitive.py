"""Primitive contract and registry.

A *primitive* is the smallest reusable unit in the framework (paper §2.2):
it receives named inputs, performs a single operation, and returns named
outputs. Primitives carry metadata — engine category, documentation, fixed
and tunable hyperparameters — which is what lets pipelines be composed,
introspected, profiled, and tuned automatically.
"""

from __future__ import annotations

import copy
import inspect
from typing import Dict, List, Optional

from repro.exceptions import PrimitiveError

__all__ = [
    "HYPERPARAMETER_TYPES",
    "Primitive",
    "register_primitive",
    "get_primitive",
    "get_primitive_class",
    "list_primitives",
]

#: Hyperparameter types understood by the tuning subsystem.
HYPERPARAMETER_TYPES = ("int", "float", "bool", "categorical")

_PRIMITIVE_REGISTRY: Dict[str, type] = {}


class Primitive:
    """Base class for all primitives.

    Class attributes (metadata):
        name: registry name of the primitive.
        engine: one of ``"preprocessing"``, ``"modeling"``, ``"postprocessing"``.
        description: one-line human-readable description.
        fit_args: names of the context variables consumed by :meth:`fit`.
        produce_args: names of the context variables consumed by :meth:`produce`.
        produce_output: names of the context variables written by :meth:`produce`.
        fixed_hyperparameters: hyperparameters that are configurable but not
            explored by the tuner (mapping name -> default value).
        tunable_hyperparameters: mapping name -> spec dict with keys ``type``,
            ``default`` and either ``range`` (numeric) or ``values``
            (categorical / bool).
    """

    name: str = "primitive"
    engine: str = "preprocessing"
    description: str = ""
    fit_args: List[str] = []
    produce_args: List[str] = []
    produce_output: List[str] = []
    fixed_hyperparameters: Dict[str, object] = {}
    tunable_hyperparameters: Dict[str, dict] = {}
    #: Whether :meth:`update` maintains genuine incremental state across
    #: micro-batches (the streaming contract). When ``False`` the default
    #: :meth:`update` simply re-``produce``s over the sliding window the
    #: stream runner supplies, which is always correct but never cheaper.
    supports_stream: bool = False
    #: Whether :meth:`produce_batch` runs a genuinely fused (vectorized)
    #: implementation over many signals at once (the batch contract). When
    #: ``False`` the default :meth:`produce_batch` simply loops
    #: :meth:`produce` per signal, which is always correct but never
    #: cheaper.
    supports_batch: bool = False
    #: Whether :meth:`produce_batch_fused` implements the *opt-in* fused
    #: batch contract: the whole batch concatenated into single large
    #: tensor operations (batched matmuls for the NN forwards). Fused
    #: results are only guaranteed equal to the per-signal loop within a
    #: small numerical tolerance — BLAS summation order changes with the
    #: GEMM shape — so they are reachable only through ``exact=False``
    #: batch plans, never through the bitwise-exact plane.
    supports_fused_batch: bool = False
    #: Step-fusion category consumed by the plan compiler's fusion pass
    #: (``repro.core.plan``). Contiguous batch-mode steps whose categories
    #: are all non-``None`` lower into a single
    #: :class:`~repro.core.plan.FusedStep` executed in one pass:
    #:
    #: * ``"elementwise"`` — per-sample transforms (imputers, scalers,
    #:   error functions, thresholds);
    #: * ``"window"``      — windowing / aggregation reshapes;
    #: * ``"forward"``     — model forwards (NN inference, spectral).
    #:
    #: ``None`` (the default) keeps the step out of every fused chain —
    #: the right value for event-assembly postprocessors and for models
    #: whose per-signal state makes chaining pointless.
    fuse_category: Optional[str] = None
    #: Whether :meth:`produce_batch_fused` accepts an ``arena=`` keyword
    #: (an :class:`~repro.core.arena.ArenaPool`) for scratch buffers. Only
    #: consulted on the fused batch plane inside fused chains.
    fused_accepts_arena: bool = False

    def __init__(self, **hyperparameters):
        defaults = self.get_default_hyperparameters()
        unknown = set(hyperparameters) - set(defaults)
        if unknown:
            raise PrimitiveError(
                f"Unknown hyperparameters for primitive {self.name!r}: {sorted(unknown)}"
            )
        defaults.update(hyperparameters)
        self.hyperparameters = defaults
        for key, value in defaults.items():
            setattr(self, key, value)

    # ------------------------------------------------------------------ #
    # metadata helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def get_default_hyperparameters(cls) -> dict:
        """Return the merged fixed + tunable hyperparameter defaults."""
        defaults = dict(cls.fixed_hyperparameters)
        for key, spec in cls.tunable_hyperparameters.items():
            defaults[key] = spec.get("default")
        return copy.deepcopy(defaults)

    @classmethod
    def get_tunable_hyperparameters(cls) -> dict:
        """Return a deep copy of the tunable hyperparameter specification."""
        for key, spec in cls.tunable_hyperparameters.items():
            if spec.get("type") not in HYPERPARAMETER_TYPES:
                raise PrimitiveError(
                    f"Primitive {cls.name!r} declares hyperparameter {key!r} with "
                    f"unsupported type {spec.get('type')!r}"
                )
        return copy.deepcopy(cls.tunable_hyperparameters)

    @classmethod
    def metadata(cls) -> dict:
        """Return the primitive annotation block (paper §2.2)."""
        return {
            "name": cls.name,
            "engine": cls.engine,
            "description": cls.description or inspect.getdoc(cls) or "",
            "fit_args": list(cls.fit_args),
            "produce_args": list(cls.produce_args),
            "produce_output": list(cls.produce_output),
            "fixed_hyperparameters": copy.deepcopy(cls.fixed_hyperparameters),
            "tunable_hyperparameters": copy.deepcopy(cls.tunable_hyperparameters),
            "supports_stream": bool(cls.supports_stream),
            "supports_batch": bool(cls.supports_batch),
            "supports_fused_batch": bool(cls.supports_fused_batch),
            "fuse_category": cls.fuse_category,
        }

    # ------------------------------------------------------------------ #
    # execution contract
    # ------------------------------------------------------------------ #
    def fit(self, **kwargs) -> None:
        """Fit the primitive. Stateless primitives keep the default no-op."""

    def produce(self, **kwargs):
        """Produce outputs. Must return a dict keyed by ``produce_output``."""
        raise NotImplementedError

    def update(self, **kwargs):
        """Consume one micro-batch in streaming mode (incremental contract).

        ``update`` receives the same keyword arguments as :meth:`produce`
        — the stream runner hands it the current sliding window — and must
        return the same output dictionary. The default implementation
        re-``produce``s over the window, so every fitted primitive works in
        a stream out of the box. Primitives that declare
        ``supports_stream = True`` override this to fold the new samples
        into internal running state (rolling extrema, running error
        moments, trailing buffers) instead of recomputing from scratch.
        """
        return self.produce(**kwargs)

    def produce_batch(self, **kwargs):
        """Produce outputs for many signals in one call (batch contract).

        Every :attr:`produce_args` keyword holds a *list* with one entry per
        signal, and the returned dictionary maps every
        :attr:`produce_output` name to a list of the same length — entry
        ``i`` of every list belongs to signal ``i``. The default
        implementation loops :meth:`produce` over the signals, so every
        primitive accepts batches out of the box and the results are
        trivially identical to per-signal calls. Primitives that declare
        ``supports_batch = True`` override this with a fused NumPy pass
        over stacked arrays; such overrides MUST stay bitwise-identical to
        the per-signal loop (the batch data plane's parity guarantee).
        """
        sizes = {len(values) for values in kwargs.values()}
        if len(sizes) > 1:
            raise PrimitiveError(
                f"Primitive {self.name!r} received batch inputs of unequal "
                f"lengths {sorted(sizes)}"
            )
        size = sizes.pop() if sizes else 0
        produced = [
            self.produce(**{arg: values[i] for arg, values in kwargs.items()})
            for i in range(size)
        ]
        return {
            out: [result[out] for result in produced]
            for out in self.produce_output
        }

    def produce_batch_fused(self, **kwargs):
        """Produce outputs for many signals in one *fused* call (opt-in).

        Same argument and return shape as :meth:`produce_batch`, but
        implementations may concatenate the whole batch into single large
        tensor operations whose results are only tolerance-equal to the
        per-signal loop (the ``exact=False`` batch contract). The default
        simply delegates to :meth:`produce_batch`, so the fused lowering
        is always safe to run; primitives that genuinely fuse must declare
        ``supports_fused_batch = True`` — the plan compiler only routes
        ``exact=False`` batch steps here for primitives that do.
        """
        return self.produce_batch(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}({self.hyperparameters})"


def register_primitive(cls: type) -> type:
    """Class decorator registering a primitive under ``cls.name``."""
    if not issubclass(cls, Primitive):
        raise PrimitiveError(f"{cls!r} is not a Primitive subclass")
    if not cls.name or cls.name == Primitive.name:
        raise PrimitiveError(f"Primitive class {cls.__name__} must define a unique name")
    if cls.engine not in ("preprocessing", "modeling", "postprocessing"):
        raise PrimitiveError(
            f"Primitive {cls.name!r} declares unknown engine {cls.engine!r}"
        )
    if cls.name in _PRIMITIVE_REGISTRY and _PRIMITIVE_REGISTRY[cls.name] is not cls:
        raise PrimitiveError(f"A different primitive named {cls.name!r} already exists")
    _PRIMITIVE_REGISTRY[cls.name] = cls
    return cls


def get_primitive_class(name: str) -> type:
    """Return the registered primitive class for ``name``."""
    _ensure_builtin_primitives_loaded()
    if name not in _PRIMITIVE_REGISTRY:
        raise PrimitiveError(
            f"Unknown primitive {name!r}. Registered: {sorted(_PRIMITIVE_REGISTRY)}"
        )
    return _PRIMITIVE_REGISTRY[name]


def get_primitive(name: str, hyperparameters: Optional[dict] = None) -> Primitive:
    """Instantiate a registered primitive with the given hyperparameters."""
    cls = get_primitive_class(name)
    return cls(**(hyperparameters or {}))


def list_primitives(engine: Optional[str] = None) -> List[str]:
    """List registered primitive names, optionally filtered by engine."""
    _ensure_builtin_primitives_loaded()
    names = sorted(_PRIMITIVE_REGISTRY)
    if engine is not None:
        names = [n for n in names if _PRIMITIVE_REGISTRY[n].engine == engine]
    return names


def _ensure_builtin_primitives_loaded() -> None:
    """Import the built-in primitive modules so they self-register."""
    # Imported lazily to avoid a circular import at package-load time.
    import repro.primitives  # noqa: F401
