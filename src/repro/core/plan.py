"""The unified plan IR: one compiled execution representation per mode.

The paper's central abstraction is a single pipeline object that moves
unchanged from offline benchmarking to live serving (§3.1, §5). On the
execution side that promise is kept here: a :class:`PlanCompiler` lowers a
template's steps — paired with their live primitive instances — into one
mode-tagged :class:`CompiledStep` intermediate representation, and every
execution surface consumes the same IR:

* ``fit``    — each step fits (when the runtime ``fit`` flag is set) and
  produces; the only mode allowed to mutate primitives through ``fit``;
* ``detect`` — produce-only, one signal per context variable;
* ``stream`` — produce-only over a sliding window; primitives that declare
  ``supports_stream`` consume it incrementally through ``update``;
* ``batch``  — produce-only, every context variable holds a *list* with
  one entry per signal and each step runs ``produce_batch`` once over the
  whole batch. With ``exact=False`` the compiler lowers to
  ``produce_batch_fused`` for primitives that declare
  ``supports_fused_batch`` — fused NN forwards whose parity is tolerance-
  based instead of bitwise (BLAS summation order changes with the GEMM
  shape), namespaced under a separate cache fingerprint.

A ``CompiledStep`` is simultaneously the in-process step body (wrapped in
a closure by the compiler) and the picklable work unit
:class:`~repro.core.executor.ProcessExecutor` ships to pool workers, so
there is exactly one implementation of argument collection, output
mapping, and mode dispatch for all four modes and all executors.

Batch plans additionally run a **step-fusion pass**: contiguous runs of
steps whose primitives declare a ``fuse_category`` (elementwise / window /
forward) lower into a single :class:`FusedStep` work unit — one node that
executes the whole chain in one pass, threading intermediate ndarrays
straight from member to member and leasing NN scratch space from the
plan's :class:`~repro.core.arena.ArenaPool` instead of re-entering the
executor (and its allocation, dependency and cache machinery) per step.
Fusion is transparent to all four executors: a ``FusedStep`` is picklable
like any ``CompiledStep``, and its cache fingerprints combine *every*
member's fingerprint while its memoized values are the chain-tail
outputs, so the caching executor's semantics are unchanged. Setting the
``REPRO_NO_FUSION`` environment variable disables the pass (each step
lowers to its own node, the pre-fusion behaviour) — the benchmark uses
this to attribute speedups.

The compiler also owns the plan cache: plans are compiled lazily per
``(mode, exact, precision)`` key and *refreshed* — not recompiled — when
a refit replaces the primitive instances (the fingerprints absorb the new
build token while the node closures keep reading the live primitive
through the shared ``[step, primitive]`` cell). ``compilations`` counts
actual lowering passes, which is what the streaming layer's refit-reuse
regression test pins.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.arena import ArenaPool
from repro.core.executor import ExecutionPlan, StepNode
from repro.exceptions import PipelineError

__all__ = ["PLAN_MODES", "CompiledStep", "FusedStep", "LaneRegistry",
           "LaneStep", "PlanCompiler", "collect_args"]

#: The execution modes a template lowers into. ``stream_batch`` is the
#: fleet plane's mode: one plan run serves N concurrent streams at once —
#: stateless steps run once over the stacked ``(n_streams, window)`` batch
#: (through the batch/fused machinery) while incremental steps keep
#: per-stream state in a :class:`LaneRegistry` and lower to
#: :class:`LaneStep` nodes.
PLAN_MODES = ("fit", "detect", "stream", "batch", "stream_batch")

#: ``fuse_category`` values the fusion pass accepts into chains.
FUSABLE_CATEGORIES = ("elementwise", "window", "forward")


def collect_args(context: dict, args, inputs: dict, step: dict) -> dict:
    """Resolve a step's argument list against the execution context."""
    kwargs = {}
    for arg in args:
        variable = inputs.get(arg, arg)
        if variable not in context:
            raise PipelineError(
                f"Step {step['name']!r} needs variable {variable!r} "
                "which is not present in the context"
            )
        kwargs[arg] = context[variable]
    return kwargs


class CompiledStep:
    """One step of the lowered plan: a mode-tagged, picklable work unit.

    The same object serves every executor: in-process executors call
    :meth:`run` directly (through the node's ``execute`` closure), and
    :class:`~repro.core.executor.ProcessExecutor` pickles it to a pool
    worker. It carries the *current* primitive instance (fitted state
    included), so payload factories build it at dispatch time.

    :meth:`run` returns ``(updates, state)`` where ``state`` is the
    primitive whenever the call mutated it (a fit, or an incremental
    streaming update) and ``None`` otherwise; the parent grafts returned
    state back through the node's ``absorb`` callback.

    Args:
        mode: one of :data:`PLAN_MODES`.
        step: the template step dictionary (name, inputs, outputs).
        primitive: the live primitive instance executing the step.
        exact: batch mode only — ``False`` lowers to the fused
            (tolerance-parity) ``produce_batch_fused`` for primitives that
            support it.
    """

    __slots__ = ("mode", "step", "primitive", "exact")

    def __init__(self, mode: str, step: dict, primitive, exact: bool = True):
        if mode not in PLAN_MODES:
            raise PipelineError(f"Unknown plan mode {mode!r}; expected one "
                                f"of {PLAN_MODES}")
        self.mode = mode
        self.step = step
        self.primitive = primitive
        self.exact = exact

    def __getstate__(self):
        return (self.mode, self.step, self.primitive, self.exact)

    def __setstate__(self, state):
        self.mode, self.step, self.primitive, self.exact = state

    @property
    def engine(self) -> str:
        return self.primitive.engine

    def _map_outputs(self, produced) -> dict:
        if not isinstance(produced, dict):
            raise PipelineError(
                f"Primitive {self.primitive.name!r} must return a dict of "
                "outputs"
            )
        outputs = self.step.get("outputs", {})
        return {outputs.get(out, out): value for out, value in produced.items()}

    def run(self, context: dict, fit: bool):
        if fit and self.mode != "fit":
            raise PipelineError(
                f"{self.mode}-mode plans are produce-only; compile a "
                "fit-mode plan to fit"
            )
        primitive = self.primitive
        step = self.step
        if self.mode in ("batch", "stream_batch"):
            kwargs = collect_args(context, primitive.produce_args,
                                  step.get("inputs", {}), step)
            if not self.exact and primitive.supports_fused_batch:
                produced = primitive.produce_batch_fused(**kwargs)
            else:
                produced = primitive.produce_batch(**kwargs)
            return self._map_outputs(produced), None
        inputs = step.get("inputs", {})
        incremental = self.mode == "stream" and primitive.supports_stream
        if fit and primitive.fit_args:
            primitive.fit(**collect_args(context, primitive.fit_args,
                                         inputs, step))
        kwargs = collect_args(context, primitive.produce_args, inputs, step)
        produced = primitive.update(**kwargs) if incremental \
            else primitive.produce(**kwargs)
        mutated = (fit and bool(primitive.fit_args)) or incremental
        return self._map_outputs(produced), (primitive if mutated else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CompiledStep(mode={self.mode!r}, "
                f"step={self.step.get('name')!r}, exact={self.exact})")


def _downcast_batch(value):
    """Cast float64 payloads to float32 for the reduced-precision plane."""
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64:
            return value.astype(np.float32)
        return value
    if isinstance(value, list):
        return [_downcast_batch(entry) for entry in value]
    return value


class FusedStep:
    """A contiguous chain of batch steps executed as one work unit.

    The fusion pass lowers runs of fusable :class:`CompiledStep`s into one
    ``FusedStep``: :meth:`run` pushes the batch through every member in a
    single pass, threading intermediate variables through a chain-local
    context instead of returning to the executor between steps. The
    returned updates are the union of every member's mapped outputs, so
    the post-run context is identical to the unfused plan's — fusion
    changes scheduling, never results (bitwise on the exact plane).

    Like :class:`CompiledStep` it is simultaneously the in-process step
    body and the picklable work unit shipped to process-pool workers. The
    arena is deliberately *not* part of the pickled state: the plan owns
    it on the parent side (:class:`PlanCompiler` attaches it after
    construction), and workers lease from a private per-run pool.

    Args:
        mode: must be ``"batch"`` — the only mode the fusion pass runs on.
        steps: the member :class:`CompiledStep`s, in chain order.
        precision: ``None`` or ``"float32"`` — the reduced-precision
            plane casts every member's float64 ndarray inputs down before
            the call, keeping the whole chain in single precision.
    """

    __slots__ = ("mode", "steps", "precision", "arena")

    def __init__(self, mode: str, steps, precision: Optional[str] = None):
        if mode not in ("batch", "stream_batch"):
            raise PipelineError(
                f"FusedStep only exists in batch modes, not {mode!r}")
        self.mode = mode
        self.steps = list(steps)
        self.precision = precision
        self.arena = None

    def __getstate__(self):
        return (self.mode, self.steps, self.precision)

    def __setstate__(self, state):
        self.mode, self.steps, self.precision = state
        self.arena = None

    @property
    def engine(self) -> str:
        # The chain's dominant engine: modeling if any member models,
        # otherwise the first member's engine.
        engines = [compiled.engine for compiled in self.steps]
        return "modeling" if "modeling" in engines else engines[0]

    def run(self, context: dict, fit: bool):
        if fit:
            raise PipelineError(
                f"{self.mode}-mode plans are produce-only; compile a "
                "fit-mode plan to fit"
            )
        arena = self.arena if self.arena is not None else ArenaPool()
        local = dict(context)
        updates = {}
        for compiled in self.steps:
            primitive = compiled.primitive
            step = compiled.step
            kwargs = collect_args(local, primitive.produce_args,
                                  step.get("inputs", {}), step)
            if self.precision == "float32":
                kwargs = {key: _downcast_batch(value)
                          for key, value in kwargs.items()}
            if not compiled.exact and primitive.supports_fused_batch:
                if primitive.fused_accepts_arena:
                    produced = primitive.produce_batch_fused(
                        arena=arena, **kwargs)
                else:
                    produced = primitive.produce_batch_fused(**kwargs)
            else:
                produced = primitive.produce_batch(**kwargs)
            mapped = compiled._map_outputs(produced)
            local.update(mapped)
            updates.update(mapped)
        return updates, None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        names = "+".join(compiled.step.get("name", "?")
                         for compiled in self.steps)
        return (f"FusedStep(mode={self.mode!r}, steps={names!r}, "
                f"precision={self.precision!r})")


class LaneRegistry:
    """Per-round table of lane-local primitive rows for stream-batch plans.

    The fleet plane (:mod:`repro.core.fleet`) keeps one incremental
    primitive *copy per stream* for every ``supports_stream`` step — a
    scaler's running statistics belong to one stream, never to the fleet.
    Each scheduling round the fleet binds the participating streams' rows
    here (:meth:`set_rows`), and the compiled :class:`LaneStep` nodes read
    their column at dispatch time — the same late-binding idiom the
    single-signal plans use for ``[step, primitive]`` cells, extended to a
    second axis. ``rows[j][i]`` is stream *j*'s primitive for cell *i*;
    each row is the stream's own (mutable) list, so in-process updates and
    worker-absorbed state both land back on the stream that owns them.
    """

    def __init__(self):
        self.rows: List[list] = []

    def set_rows(self, rows: List[list]) -> None:
        """Bind the participating lanes' primitive rows for one round."""
        self.rows = list(rows)

    def column(self, index: int) -> list:
        """Every participating lane's primitive for template cell ``index``."""
        return [row[index] for row in self.rows]

    def absorb(self, index: int, primitives: list) -> None:
        """Write worker-mutated primitives back into their owning rows."""
        for row, primitive in zip(self.rows, primitives):
            row[index] = primitive

    def __len__(self) -> int:
        return len(self.rows)


class LaneStep:
    """One stream-batch step executed per lane over lane-local state.

    The stream-batch analogue of a stream-mode incremental step: stateless
    steps in a stream-batch plan run once over the whole ``(n_streams,
    window)`` stack, but a ``supports_stream`` primitive mutates running
    state that belongs to exactly one stream, so this work unit loops the
    participating lanes, feeding each lane's slice of the batched context
    through *that lane's* primitive copy via ``update``. Like
    :class:`CompiledStep` it is both the in-process step body and the
    picklable payload shipped to process-pool workers; :meth:`run` returns
    the mutated primitive list as state so the parent can graft it back
    into the :class:`LaneRegistry` rows.
    """

    __slots__ = ("step", "primitives")

    def __init__(self, step: dict, primitives: list):
        self.step = step
        self.primitives = list(primitives)

    def __getstate__(self):
        return (self.step, self.primitives)

    def __setstate__(self, state):
        self.step, self.primitives = state

    @property
    def engine(self) -> str:
        return self.primitives[0].engine if self.primitives else "transform"

    def run(self, context: dict, fit: bool):
        if fit:
            raise PipelineError(
                "stream_batch-mode plans are produce-only; compile a "
                "fit-mode plan to fit"
            )
        step = self.step
        inputs = step.get("inputs", {})
        outputs = step.get("outputs", {})
        collected: dict = {}
        mutated = False
        for lane_index, primitive in enumerate(self.primitives):
            kwargs = {}
            for arg in primitive.produce_args:
                variable = inputs.get(arg, arg)
                if variable not in context:
                    raise PipelineError(
                        f"Step {step['name']!r} needs variable {variable!r} "
                        "which is not present in the context"
                    )
                kwargs[arg] = context[variable][lane_index]
            if primitive.supports_stream:
                produced = primitive.update(**kwargs)
                mutated = True
            else:  # pragma: no cover - lanes are built from stream steps
                produced = primitive.produce(**kwargs)
            if not isinstance(produced, dict):
                raise PipelineError(
                    f"Primitive {primitive.name!r} must return a dict of "
                    "outputs"
                )
            for out, value in produced.items():
                collected.setdefault(outputs.get(out, out), []).append(value)
        return collected, (self.primitives if mutated else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"LaneStep(step={self.step.get('name')!r}, "
                f"lanes={len(self.primitives)})")


class PlanCompiler:
    """Lower template steps into mode-tagged execution plans, once.

    Args:
        cells: the pipeline's mutable ``[step, primitive]`` cells. Node
            closures and payload factories read the primitive *through*
            the cell at call time, so a refit (or a process worker's
            absorbed state) is visible to every already-compiled plan.
        build_token: opaque token identifying the current primitive build;
            folded into the fingerprint of stateful steps so caches never
            serve results across refits.
    """

    def __init__(self, cells: List[list], build_token: str = ""):
        self.cells = cells
        self.build_token = build_token
        self.compilations = 0
        self._plans: Dict[Tuple[str, bool], ExecutionPlan] = {}

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #
    def _base_fingerprint(self, step: dict, primitive) -> str:
        identity = {
            "primitive": step["primitive"],
            "inputs": step.get("inputs", {}),
            "outputs": step.get("outputs", {}),
            "hyperparameters": primitive.hyperparameters,
        }
        if primitive.fit_args:
            identity["build"] = self.build_token
        return json.dumps(identity, sort_keys=True, default=repr)

    @staticmethod
    def _batch_namespace(exact: bool, precision: Optional[str],
                         mode: str = "batch") -> str:
        prefix = "stream-batch" if mode == "stream_batch" else "batch"
        if precision is not None:
            # Reduced precision changes every value flowing through the
            # plan, so the whole plan gets its own cache namespace.
            return f"{prefix}-fused-{precision}:"
        return f"{prefix}:" if exact else f"{prefix}-fused:"

    def _fingerprints(self, step: dict, primitive, mode: str, exact: bool,
                      precision: Optional[str] = None) -> Tuple[str, str]:
        """``(fingerprint, signal_fingerprint)`` for one single-step node.

        fit / detect / stream share the base fingerprint on purpose: a
        step cacheable in fit mode is one whose fitting is a no-op, so a
        fit run warms the cache for subsequent detect runs. Batch plans
        are namespaced (``batch:`` / ``batch-fused:`` /
        ``batch-fused-float32:``) so a whole-batch memo entry can never
        collide with a single-signal one, and exact batch nodes
        additionally expose the *single-signal* fingerprint — the handle
        the caching executor uses to serve and memoize per-signal slices
        from inside the batch. Fused-plane and reduced-precision nodes do
        not: their outputs are only tolerance-equal to per-signal
        results, and must never poison (or be served from) the exact
        per-signal cache.
        """
        base = self._base_fingerprint(step, primitive)
        if mode not in ("batch", "stream_batch"):
            return base, ""
        namespace = self._batch_namespace(exact, precision, mode)
        if mode == "batch" and exact and precision is None:
            return namespace + base, base
        # Fused-plane, reduced-precision and stream-batch nodes never
        # expose a per-signal handle: stream-batch results depend on
        # per-lane incremental state and are never cached at all.
        return namespace + base, ""

    def _chain_fingerprints(self, indices: Tuple[int, ...], exact: bool,
                            precision: Optional[str],
                            mode: str = "batch") -> Tuple[str, str]:
        """``(fingerprint, signal_fingerprint)`` for one fused chain node.

        The fingerprint combines **every** member's base fingerprint, not
        just the tail's: the memoized *values* are the chain-tail outputs,
        but keying them on the tail alone would let two pipelines whose
        chains differ mid-stream (say, different scaler hyperparameters
        feeding the same NN step) serve each other stale results. On the
        exact plane the combined string doubles as the per-signal handle,
        so repeat batches are served slice-by-slice at chain granularity.
        """
        bases = [self._base_fingerprint(self.cells[i][0], self.cells[i][1])
                 for i in indices]
        combined = json.dumps(bases)
        namespace = self._batch_namespace(exact, precision, mode)
        if mode == "batch" and exact and precision is None:
            return namespace + combined, combined
        return namespace + combined, ""

    # ------------------------------------------------------------------ #
    # lowering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _io_sets(step: dict, primitive) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        inputs = step.get("inputs", {})
        outputs = step.get("outputs", {})
        reads = tuple(sorted({
            inputs.get(arg, arg)
            for arg in set(primitive.produce_args) | set(primitive.fit_args)
        }))
        writes = tuple(outputs.get(out, out) for out in primitive.produce_output)
        return reads, writes

    @staticmethod
    def _cacheable(primitive, mode: str):
        if mode == "stream" and primitive.supports_stream:
            # An incremental step mutates internal state on every call, so
            # its outputs must never be served from a memo cache.
            return lambda fit: False
        if mode == "stream_batch":
            # Stream-batch outputs depend on which lanes participate in
            # the round and on their sliding windows — both change every
            # round, so memoization can only ever miss (or worse, hit
            # across rounds). Never cache.
            return lambda fit: False
        if mode == "batch":
            return lambda fit: not fit
        # A step with no fit state is deterministic given its inputs and
        # hyperparameters; a fitted stateful step is only safe to cache in
        # produce mode (the fingerprint pins its build).
        stateful = bool(primitive.fit_args)
        return lambda fit, stateful=stateful: not (fit and stateful)

    def _lower_node(self, entry: list, mode: str, exact: bool,
                    precision: Optional[str] = None) -> StepNode:
        step, primitive = entry
        reads, writes = self._io_sets(step, primitive)
        fingerprint, signal_fingerprint = self._fingerprints(
            step, primitive, mode, exact, precision)

        def execute(context: dict, fit: bool, entry=entry) -> dict:
            # The primitive is read through the cell at call time, and runs
            # in-process: mutation (fit / update) lands on the shared
            # object directly, so there is no state to absorb.
            updates, _ = CompiledStep(mode, entry[0], entry[1], exact).run(
                context, fit)
            return updates

        absorb = None
        if mode in ("fit", "stream"):
            absorb = (lambda fitted, entry=entry:
                      entry.__setitem__(1, fitted))
        return StepNode(
            name=step["name"],
            engine=primitive.engine,
            reads=reads,
            writes=writes,
            execute=execute,
            fingerprint=fingerprint,
            cacheable=self._cacheable(primitive, mode),
            payload=(lambda entry=entry:
                     CompiledStep(mode, entry[0], entry[1], exact)),
            absorb=absorb,
            mode=mode,
            signal_fingerprint=signal_fingerprint,
        )

    # ------------------------------------------------------------------ #
    # the step-fusion pass (batch mode only)
    # ------------------------------------------------------------------ #
    def _fusion_chains(self, exclude_stream: bool = False) \
            -> List[Tuple[int, ...]]:
        """Contiguous runs (length >= 2) of fusable cells, as index tuples.

        A cell is fusable when its primitive declares one of the
        :data:`FUSABLE_CATEGORIES`. Single fusable steps between
        non-fusable neighbours stay plain ``CompiledStep`` nodes — a
        one-step "chain" has no step boundary to eliminate, and keeping
        it plain preserves the per-step cache granularity. Stream-batch
        plans pass ``exclude_stream``: incremental (``supports_stream``)
        cells hold per-lane state and lower to :class:`LaneStep` nodes,
        so they break chains instead of joining them.
        """
        chains: List[Tuple[int, ...]] = []
        run: List[int] = []
        for index, (_, primitive) in enumerate(self.cells):
            fusable = primitive.fuse_category in FUSABLE_CATEGORIES
            if fusable and exclude_stream and primitive.supports_stream:
                fusable = False
            if fusable:
                run.append(index)
                continue
            if len(run) >= 2:
                chains.append(tuple(run))
            run = []
        if len(run) >= 2:
            chains.append(tuple(run))
        return chains

    def _build_fused_step(self, indices: Tuple[int, ...], exact: bool,
                          precision: Optional[str],
                          mode: str = "batch") -> FusedStep:
        return FusedStep(
            mode,
            [CompiledStep(mode, self.cells[i][0], self.cells[i][1], exact)
             for i in indices],
            precision=precision,
        )

    def _lower_fused_node(self, indices: Tuple[int, ...], exact: bool,
                          precision: Optional[str], arena,
                          mode: str = "batch") -> StepNode:
        entries = [self.cells[i] for i in indices]
        # External reads: variables a member consumes that no earlier
        # member of the same chain produced. Writes keep every member's
        # outputs (in order) so the post-run context matches the unfused
        # plan exactly and dependency hazards against neighbouring nodes
        # are computed on the same variables.
        internal: set = set()
        reads: List[str] = []
        writes: List[str] = []
        for step, primitive in entries:
            step_reads, step_writes = self._io_sets(step, primitive)
            for variable in step_reads:
                if variable not in internal and variable not in reads:
                    reads.append(variable)
            for variable in step_writes:
                internal.add(variable)
                if variable not in writes:
                    writes.append(variable)
        fingerprint, signal_fingerprint = self._chain_fingerprints(
            indices, exact, precision, mode)

        def execute(context: dict, fit: bool) -> dict:
            fused = self._build_fused_step(indices, exact, precision, mode)
            fused.arena = arena
            updates, _ = fused.run(context, fit)
            return updates

        cacheable = ((lambda fit: False) if mode == "stream_batch"
                     else (lambda fit: not fit))
        return StepNode(
            name="fused:" + "+".join(entry[0]["name"] for entry in entries),
            engine=("modeling" if any(
                entry[1].engine == "modeling" for entry in entries)
                else entries[0][1].engine),
            reads=tuple(sorted(reads)),
            writes=tuple(writes),
            execute=execute,
            fingerprint=fingerprint,
            cacheable=cacheable,
            payload=(lambda: self._build_fused_step(indices, exact,
                                                    precision, mode)),
            absorb=None,
            mode=mode,
            signal_fingerprint=signal_fingerprint,
            members=tuple(indices),
        )

    def _lower_lane_node(self, entry: list, index: int,
                         registry: LaneRegistry, exact: bool,
                         precision: Optional[str]) -> StepNode:
        """Lower one incremental cell into a per-lane stream-batch node.

        The node reads the participating lanes' primitive copies through
        the shared :class:`LaneRegistry` at dispatch time — the registry
        is rebound every scheduling round, so one compiled plan serves
        every round regardless of which streams show up.
        """
        step, primitive = entry
        reads, writes = self._io_sets(step, primitive)
        fingerprint, signal_fingerprint = self._fingerprints(
            step, primitive, "stream_batch", exact, precision)

        def execute(context: dict, fit: bool) -> dict:
            updates, _ = LaneStep(entry[0], registry.column(index)).run(
                context, fit)
            return updates

        return StepNode(
            name=step["name"],
            engine=primitive.engine,
            reads=reads,
            writes=writes,
            execute=execute,
            fingerprint=fingerprint,
            cacheable=lambda fit: False,
            payload=lambda: LaneStep(entry[0], registry.column(index)),
            absorb=lambda primitives: registry.absorb(index, primitives),
            mode="stream_batch",
            signal_fingerprint=signal_fingerprint,
        )

    def compile(self, mode: str, exact: bool = True,
                precision: Optional[str] = None,
                registry: Optional[LaneRegistry] = None) -> ExecutionPlan:
        """Lower every step into a fresh mode-tagged :class:`ExecutionPlan`.

        Batch-mode plans additionally run the step-fusion pass (unless
        the ``REPRO_NO_FUSION`` environment variable is set): contiguous
        fusable chains become single :class:`FusedStep` nodes sharing the
        plan's :class:`~repro.core.arena.ArenaPool`, exposed on the
        returned plan as ``plan.arena`` alongside ``plan.fusion_groups``.

        Stream-batch plans require a :class:`LaneRegistry` and run the
        same fusion pass over their stateless cells; incremental cells
        lower to :class:`LaneStep` nodes bound to the registry.
        """
        if mode not in PLAN_MODES:
            raise PipelineError(f"Unknown plan mode {mode!r}; expected one "
                                f"of {PLAN_MODES}")
        stream_batch = mode == "stream_batch"
        if stream_batch and registry is None:
            raise PipelineError("stream_batch plans need a LaneRegistry")
        self.compilations += 1
        batched = mode == "batch" or stream_batch
        fuse = batched and not os.environ.get("REPRO_NO_FUSION")
        chains = self._fusion_chains(exclude_stream=stream_batch) \
            if fuse else []
        arena = ArenaPool() if batched else None
        chain_start = {chain[0]: chain for chain in chains}
        fused_indices = {index for chain in chains for index in chain}

        nodes: List[StepNode] = []
        groups: List[dict] = []
        index = 0
        while index < len(self.cells):
            if index in chain_start:
                chain = chain_start[index]
                nodes.append(self._lower_fused_node(
                    chain, exact, precision, arena, mode))
                groups.append({
                    "name": nodes[-1].name,
                    "steps": [self.cells[i][0]["name"] for i in chain],
                    "categories": [self.cells[i][1].fuse_category
                                   for i in chain],
                })
                index = chain[-1] + 1
                continue
            assert index not in fused_indices
            if stream_batch and self.cells[index][1].supports_stream:
                nodes.append(self._lower_lane_node(
                    self.cells[index], index, registry, exact, precision))
            else:
                nodes.append(self._lower_node(
                    self.cells[index], mode, exact, precision))
            index += 1

        plan = ExecutionPlan(nodes)
        plan.arena = arena
        plan.fusion_groups = groups
        plan.lane_registry = registry if stream_batch else None
        return plan

    def plan(self, mode: str, exact: bool = True,
             precision: Optional[str] = None,
             registry: Optional[LaneRegistry] = None) -> ExecutionPlan:
        """The cached plan for ``(mode, exact, precision)``, compiled lazily.

        A stream-batch plan is additionally pinned to its
        :class:`LaneRegistry`: passing a different registry recompiles
        (each fleet group owns one registry for the pipeline's lifetime,
        so this never happens on the hot path).
        """
        key = (mode, bool(exact), precision)
        cached = self._plans.get(key)
        if (cached is not None and mode == "stream_batch"
                and cached.lane_registry is not registry):
            cached = None
        if cached is None:
            cached = self.compile(mode, exact=exact, precision=precision,
                                  registry=registry)
            self._plans[key] = cached
        return self._plans[key]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def refresh(self, build_token: Optional[str] = None) -> None:
        """Re-stamp fingerprints after the cells received fresh primitives.

        A refit replaces every cell's primitive in place; the compiled
        node closures keep working (they read through the cell), but the
        fingerprints of stateful steps must absorb the new build token so
        caching executors never serve the previous fit's outputs. Fused
        nodes carry the indices of the cells they cover (``members``), so
        their combined fingerprints are recomputed from the same cells
        the chain executes. This is the cheap path that makes refits
        reuse compiled plans instead of lowering them again.
        """
        if build_token is not None:
            self.build_token = build_token
        for (mode, exact, precision), plan in self._plans.items():
            index = 0
            for node in plan.nodes:
                if node.members:
                    node.fingerprint, node.signal_fingerprint = \
                        self._chain_fingerprints(node.members, exact,
                                                 precision, mode)
                    index = node.members[-1] + 1
                else:
                    entry = self.cells[index]
                    node.fingerprint, node.signal_fingerprint = \
                        self._fingerprints(entry[0], entry[1], mode, exact,
                                           precision)
                    index += 1
