"""The unified plan IR: one compiled execution representation per mode.

The paper's central abstraction is a single pipeline object that moves
unchanged from offline benchmarking to live serving (§3.1, §5). On the
execution side that promise is kept here: a :class:`PlanCompiler` lowers a
template's steps — paired with their live primitive instances — into one
mode-tagged :class:`CompiledStep` intermediate representation, and every
execution surface consumes the same IR:

* ``fit``    — each step fits (when the runtime ``fit`` flag is set) and
  produces; the only mode allowed to mutate primitives through ``fit``;
* ``detect`` — produce-only, one signal per context variable;
* ``stream`` — produce-only over a sliding window; primitives that declare
  ``supports_stream`` consume it incrementally through ``update``;
* ``batch``  — produce-only, every context variable holds a *list* with
  one entry per signal and each step runs ``produce_batch`` once over the
  whole batch. With ``exact=False`` the compiler lowers to
  ``produce_batch_fused`` for primitives that declare
  ``supports_fused_batch`` — fused NN forwards whose parity is tolerance-
  based instead of bitwise (BLAS summation order changes with the GEMM
  shape), namespaced under a separate cache fingerprint.

A ``CompiledStep`` is simultaneously the in-process step body (wrapped in
a closure by the compiler) and the picklable work unit
:class:`~repro.core.executor.ProcessExecutor` ships to pool workers, so
there is exactly one implementation of argument collection, output
mapping, and mode dispatch for all four modes and all executors.

The compiler also owns the plan cache: plans are compiled lazily per
``(mode, exact)`` key and *refreshed* — not recompiled — when a refit
replaces the primitive instances (the fingerprints absorb the new build
token while the node closures keep reading the live primitive through the
shared ``[step, primitive]`` cell). ``compilations`` counts actual
lowering passes, which is what the streaming layer's refit-reuse
regression test pins.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.executor import ExecutionPlan, StepNode
from repro.exceptions import PipelineError

__all__ = ["PLAN_MODES", "CompiledStep", "PlanCompiler", "collect_args"]

#: The four execution modes a template lowers into.
PLAN_MODES = ("fit", "detect", "stream", "batch")


def collect_args(context: dict, args, inputs: dict, step: dict) -> dict:
    """Resolve a step's argument list against the execution context."""
    kwargs = {}
    for arg in args:
        variable = inputs.get(arg, arg)
        if variable not in context:
            raise PipelineError(
                f"Step {step['name']!r} needs variable {variable!r} "
                "which is not present in the context"
            )
        kwargs[arg] = context[variable]
    return kwargs


class CompiledStep:
    """One step of the lowered plan: a mode-tagged, picklable work unit.

    The same object serves every executor: in-process executors call
    :meth:`run` directly (through the node's ``execute`` closure), and
    :class:`~repro.core.executor.ProcessExecutor` pickles it to a pool
    worker. It carries the *current* primitive instance (fitted state
    included), so payload factories build it at dispatch time.

    :meth:`run` returns ``(updates, state)`` where ``state`` is the
    primitive whenever the call mutated it (a fit, or an incremental
    streaming update) and ``None`` otherwise; the parent grafts returned
    state back through the node's ``absorb`` callback.

    Args:
        mode: one of :data:`PLAN_MODES`.
        step: the template step dictionary (name, inputs, outputs).
        primitive: the live primitive instance executing the step.
        exact: batch mode only — ``False`` lowers to the fused
            (tolerance-parity) ``produce_batch_fused`` for primitives that
            support it.
    """

    __slots__ = ("mode", "step", "primitive", "exact")

    def __init__(self, mode: str, step: dict, primitive, exact: bool = True):
        if mode not in PLAN_MODES:
            raise PipelineError(f"Unknown plan mode {mode!r}; expected one "
                                f"of {PLAN_MODES}")
        self.mode = mode
        self.step = step
        self.primitive = primitive
        self.exact = exact

    def __getstate__(self):
        return (self.mode, self.step, self.primitive, self.exact)

    def __setstate__(self, state):
        self.mode, self.step, self.primitive, self.exact = state

    @property
    def engine(self) -> str:
        return self.primitive.engine

    def _map_outputs(self, produced) -> dict:
        if not isinstance(produced, dict):
            raise PipelineError(
                f"Primitive {self.primitive.name!r} must return a dict of "
                "outputs"
            )
        outputs = self.step.get("outputs", {})
        return {outputs.get(out, out): value for out, value in produced.items()}

    def run(self, context: dict, fit: bool):
        if fit and self.mode != "fit":
            raise PipelineError(
                f"{self.mode}-mode plans are produce-only; compile a "
                "fit-mode plan to fit"
            )
        primitive = self.primitive
        step = self.step
        if self.mode == "batch":
            kwargs = collect_args(context, primitive.produce_args,
                                  step.get("inputs", {}), step)
            if not self.exact and primitive.supports_fused_batch:
                produced = primitive.produce_batch_fused(**kwargs)
            else:
                produced = primitive.produce_batch(**kwargs)
            return self._map_outputs(produced), None
        inputs = step.get("inputs", {})
        incremental = self.mode == "stream" and primitive.supports_stream
        if fit and primitive.fit_args:
            primitive.fit(**collect_args(context, primitive.fit_args,
                                         inputs, step))
        kwargs = collect_args(context, primitive.produce_args, inputs, step)
        produced = primitive.update(**kwargs) if incremental \
            else primitive.produce(**kwargs)
        mutated = (fit and bool(primitive.fit_args)) or incremental
        return self._map_outputs(produced), (primitive if mutated else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CompiledStep(mode={self.mode!r}, "
                f"step={self.step.get('name')!r}, exact={self.exact})")


class PlanCompiler:
    """Lower template steps into mode-tagged execution plans, once.

    Args:
        cells: the pipeline's mutable ``[step, primitive]`` cells. Node
            closures and payload factories read the primitive *through*
            the cell at call time, so a refit (or a process worker's
            absorbed state) is visible to every already-compiled plan.
        build_token: opaque token identifying the current primitive build;
            folded into the fingerprint of stateful steps so caches never
            serve results across refits.
    """

    def __init__(self, cells: List[list], build_token: str = ""):
        self.cells = cells
        self.build_token = build_token
        self.compilations = 0
        self._plans: Dict[Tuple[str, bool], ExecutionPlan] = {}

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #
    def _base_fingerprint(self, step: dict, primitive) -> str:
        identity = {
            "primitive": step["primitive"],
            "inputs": step.get("inputs", {}),
            "outputs": step.get("outputs", {}),
            "hyperparameters": primitive.hyperparameters,
        }
        if primitive.fit_args:
            identity["build"] = self.build_token
        return json.dumps(identity, sort_keys=True, default=repr)

    def _fingerprints(self, step: dict, primitive, mode: str,
                      exact: bool) -> Tuple[str, str]:
        """``(fingerprint, signal_fingerprint)`` for one node.

        fit / detect / stream share the base fingerprint on purpose: a
        step cacheable in fit mode is one whose fitting is a no-op, so a
        fit run warms the cache for subsequent detect runs. Batch plans
        are namespaced (``batch:`` / ``batch-fused:``) so a whole-batch
        memo entry can never collide with a single-signal one, and exact
        batch nodes additionally expose the *single-signal* fingerprint —
        the handle the caching executor uses to serve and memoize
        per-signal slices from inside the batch. Fused nodes do not: their
        outputs are only tolerance-equal to per-signal results, and must
        never poison (or be served from) the exact per-signal cache.
        """
        base = self._base_fingerprint(step, primitive)
        if mode != "batch":
            return base, ""
        if exact:
            return "batch:" + base, base
        return "batch-fused:" + base, ""

    # ------------------------------------------------------------------ #
    # lowering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _io_sets(step: dict, primitive) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        inputs = step.get("inputs", {})
        outputs = step.get("outputs", {})
        reads = tuple(sorted({
            inputs.get(arg, arg)
            for arg in set(primitive.produce_args) | set(primitive.fit_args)
        }))
        writes = tuple(outputs.get(out, out) for out in primitive.produce_output)
        return reads, writes

    @staticmethod
    def _cacheable(primitive, mode: str):
        if mode == "stream" and primitive.supports_stream:
            # An incremental step mutates internal state on every call, so
            # its outputs must never be served from a memo cache.
            return lambda fit: False
        if mode == "batch":
            return lambda fit: not fit
        # A step with no fit state is deterministic given its inputs and
        # hyperparameters; a fitted stateful step is only safe to cache in
        # produce mode (the fingerprint pins its build).
        stateful = bool(primitive.fit_args)
        return lambda fit, stateful=stateful: not (fit and stateful)

    def _lower_node(self, entry: list, mode: str, exact: bool) -> StepNode:
        step, primitive = entry
        reads, writes = self._io_sets(step, primitive)
        fingerprint, signal_fingerprint = self._fingerprints(
            step, primitive, mode, exact)

        def execute(context: dict, fit: bool, entry=entry) -> dict:
            # The primitive is read through the cell at call time, and runs
            # in-process: mutation (fit / update) lands on the shared
            # object directly, so there is no state to absorb.
            updates, _ = CompiledStep(mode, entry[0], entry[1], exact).run(
                context, fit)
            return updates

        absorb = None
        if mode in ("fit", "stream"):
            absorb = (lambda fitted, entry=entry:
                      entry.__setitem__(1, fitted))
        return StepNode(
            name=step["name"],
            engine=primitive.engine,
            reads=reads,
            writes=writes,
            execute=execute,
            fingerprint=fingerprint,
            cacheable=self._cacheable(primitive, mode),
            payload=(lambda entry=entry:
                     CompiledStep(mode, entry[0], entry[1], exact)),
            absorb=absorb,
            mode=mode,
            signal_fingerprint=signal_fingerprint,
        )

    def compile(self, mode: str, exact: bool = True) -> ExecutionPlan:
        """Lower every step into a fresh mode-tagged :class:`ExecutionPlan`."""
        if mode not in PLAN_MODES:
            raise PipelineError(f"Unknown plan mode {mode!r}; expected one "
                                f"of {PLAN_MODES}")
        self.compilations += 1
        return ExecutionPlan([
            self._lower_node(entry, mode, exact) for entry in self.cells
        ])

    def plan(self, mode: str, exact: bool = True) -> ExecutionPlan:
        """The cached plan for ``(mode, exact)``, compiling it on first use."""
        key = (mode, bool(exact))
        if key not in self._plans:
            self._plans[key] = self.compile(mode, exact=exact)
        return self._plans[key]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def refresh(self, build_token: Optional[str] = None) -> None:
        """Re-stamp fingerprints after the cells received fresh primitives.

        A refit replaces every cell's primitive in place; the compiled
        node closures keep working (they read through the cell), but the
        fingerprints of stateful steps must absorb the new build token so
        caching executors never serve the previous fit's outputs. This is
        the cheap path that makes refits reuse compiled plans instead of
        lowering them again.
        """
        if build_token is not None:
            self.build_token = build_token
        for (mode, exact), plan in self._plans.items():
            for node, entry in zip(plan.nodes, self.cells):
                node.fingerprint, node.signal_fingerprint = \
                    self._fingerprints(entry[0], entry[1], mode, exact)
