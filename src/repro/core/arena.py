"""Preallocated scratch-buffer arena for fused plan execution.

Fused chains (:class:`~repro.core.plan.FusedStep`) and the time-major NN
kernels behind ``produce_batch_fused`` need a handful of scratch ndarrays
per call — gate pre-activations, cell state, per-step RHS buffers. Sized
from the batch shape, those buffers are identical call after call, so the
plan owns one :class:`ArenaPool` and the kernels lease buffers from it
instead of allocating fresh arrays on every batch.

Ownership rules (documented in ARCHITECTURE.md):

* the **plan** owns the pool — one pool per compiled batch plan, created
  at compile time and living exactly as long as the plan does;
* a kernel **leases** buffers inside an :meth:`ArenaPool.scope` block and
  must not let leased memory escape the scope (escaping values are
  copied out);
* leased buffers come back uninitialised — callers zero or overwrite
  them, exactly as with ``np.empty``.

The pool never crosses a process boundary: ``FusedStep.__getstate__``
drops it, and workers rebuild a private pool lazily.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ArenaPool"]


class ArenaPool:
    """Reusable ndarray buffers keyed by ``(shape, dtype)``.

    ``take`` hands out a free buffer of the requested shape/dtype or
    allocates one; buffers leased inside a :meth:`scope` return to the
    free lists when the scope exits. The pool is thread-safe: concurrent
    scopes lease disjoint buffers (the executor may run independent
    fused chains on worker threads).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[Tuple[tuple, str], List[np.ndarray]] = {}
        self._allocations = 0
        self._reuses = 0
        self._bytes_held = 0
        self._bytes_reused = 0

    # ------------------------------------------------------------------ #
    # leasing
    # ------------------------------------------------------------------ #
    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """Lease an uninitialised buffer of ``shape`` / ``dtype``."""
        shape = tuple(int(dim) for dim in shape)
        dtype = np.dtype(dtype)
        key = (shape, dtype.str)
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                buffer = bucket.pop()
                self._reuses += 1
                self._bytes_reused += buffer.nbytes
                return buffer
        buffer = np.empty(shape, dtype=dtype)
        with self._lock:
            self._allocations += 1
            self._bytes_held += buffer.nbytes
        return buffer

    def release(self, *buffers: np.ndarray) -> None:
        """Return leased buffers to their free lists."""
        with self._lock:
            for buffer in buffers:
                if buffer is None:
                    continue
                key = (buffer.shape, buffer.dtype.str)
                self._free.setdefault(key, []).append(buffer)

    @contextmanager
    def scope(self):
        """Context manager leasing buffers that auto-release on exit.

        Yields a ``take(shape, dtype)`` callable; every buffer taken
        through it is released when the ``with`` block exits, whether or
        not the body raised.
        """
        leased: List[np.ndarray] = []

        def take(shape, dtype=np.float64) -> np.ndarray:
            buffer = self.take(shape, dtype)
            leased.append(buffer)
            return buffer

        try:
            yield take
        finally:
            self.release(*leased)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Allocation/reuse counters for the fusion report."""
        with self._lock:
            free_buffers = sum(len(bucket) for bucket in self._free.values())
            return {
                "allocations": self._allocations,
                "reuses": self._reuses,
                "bytes_held": self._bytes_held,
                "bytes_reused": self._bytes_reused,
                "free_buffers": free_buffers,
                "shapes": sorted(
                    f"{shape}/{dtype}" for shape, dtype in self._free),
            }

    def clear(self) -> None:
        """Drop every pooled buffer and reset the counters."""
        with self._lock:
            self._free.clear()
            self._allocations = 0
            self._reuses = 0
            self._bytes_held = 0
            self._bytes_reused = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.stats()
        return (f"ArenaPool(allocations={stats['allocations']}, "
                f"reuses={stats['reuses']}, "
                f"bytes_held={stats['bytes_held']})")
