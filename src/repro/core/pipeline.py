"""Templates and pipelines: computational graphs of primitives.

Following the paper (§3.2), a *template* ``T = <V, E, Λ>`` is a sequence of
pipeline steps ``V`` whose data flow ``E`` is given by the variables each
primitive consumes and produces, together with the joint tunable
hyperparameter space ``Λ``. A *pipeline* ``P = <V, E, λ>`` fixes a specific
hyperparameter assignment ``λ ∈ Λ``.

Execution lowers through the unified plan IR (:mod:`repro.core.plan`): a
:class:`~repro.core.plan.PlanCompiler` turns the template's steps into one
mode-tagged :class:`~repro.core.plan.CompiledStep` representation per mode
(``fit`` / ``detect`` / ``stream`` / ``batch``), and every public entry
point — :meth:`Pipeline.fit`, :meth:`Pipeline.detect`,
:meth:`Pipeline.partial_detect`, :meth:`Pipeline.detect_batch` — runs the
corresponding compiled plan through the pipeline's executor.
"""

from __future__ import annotations

import copy
import uuid
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro.core.executor import (
    ExecutionPlan,
    Executor,
    get_executor,
    observe_step_timings,
)
from repro.core.plan import PlanCompiler
from repro.core.primitive import get_primitive, get_primitive_class
from repro.exceptions import NotFittedError, PipelineError

__all__ = ["Template", "Pipeline"]


class Template:
    """A pipeline template with an open hyperparameter space.

    Args:
        spec: dictionary with keys ``name``, optional ``description``, and
            ``steps`` — a list of step dictionaries with keys ``primitive``
            (registry name), optional ``name`` (unique step name), optional
            ``hyperparameters``, and optional ``inputs`` / ``outputs``
            mappings from primitive argument names to context variable names.
    """

    def __init__(self, spec: dict):
        if "steps" not in spec or not spec["steps"]:
            raise PipelineError("A template spec must declare at least one step")
        self.spec = copy.deepcopy(spec)
        self.name = spec.get("name", "template")
        self.description = spec.get("description", "")
        self.steps = self.spec["steps"]
        self._assign_step_names()
        self._validate()

    def _assign_step_names(self) -> None:
        seen = set()
        for step in self.steps:
            if "primitive" not in step:
                raise PipelineError(f"Step {step!r} does not declare a primitive")
            name = step.get("name", step["primitive"])
            base = name
            suffix = 1
            while name in seen:
                suffix += 1
                name = f"{base}#{suffix}"
            step["name"] = name
            seen.add(name)

    def _validate(self) -> None:
        """Check that every primitive exists and inputs are producible."""
        available = {"data", "events"}
        graph = nx.DiGraph()
        previous_producer = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            graph.add_node(step["name"])
            inputs = step.get("inputs", {})
            outputs = step.get("outputs", {})

            for arg in set(cls.produce_args) | set(cls.fit_args):
                variable = inputs.get(arg, arg)
                if variable not in available:
                    raise PipelineError(
                        f"Step {step['name']!r} requires variable {variable!r} "
                        "which no earlier step produces"
                    )
                if variable in previous_producer:
                    graph.add_edge(previous_producer[variable], step["name"])

            for out in cls.produce_output:
                variable = outputs.get(out, out)
                available.add(variable)
                previous_producer[variable] = step["name"]

        if not nx.is_directed_acyclic_graph(graph):
            raise PipelineError(f"Template {self.name!r} contains a cycle")
        self.graph = graph

    # ------------------------------------------------------------------ #
    def get_tunable_hyperparameters(self) -> Dict[str, Dict[str, dict]]:
        """Return ``Λ``: the tunable hyperparameters of every step."""
        space = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            tunable = cls.get_tunable_hyperparameters()
            if tunable:
                space[step["name"]] = tunable
        return space

    def get_default_hyperparameters(self) -> Dict[str, dict]:
        """Return the default ``λ`` for every step (fixed values merged in)."""
        defaults = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            values = cls.get_default_hyperparameters()
            values.update(step.get("hyperparameters", {}))
            defaults[step["name"]] = values
        return defaults

    def create_pipeline(self, hyperparameters: Optional[dict] = None) -> "Pipeline":
        """Instantiate a :class:`Pipeline` with a fixed ``λ``."""
        return Pipeline(self.spec, hyperparameters=hyperparameters)

    @property
    def engines(self) -> List[str]:
        """Engine category of every step, in order."""
        return [get_primitive_class(step["primitive"]).engine for step in self.steps]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Template(name={self.name!r}, steps={len(self.steps)})"


class Pipeline:
    """An executable anomaly detection pipeline.

    The pipeline runs its steps over a shared *context* — a dictionary of
    named variables. ``fit`` calls every step's ``fit`` and ``produce``;
    ``detect`` only calls ``produce``. Step scheduling, per-step timing and
    memory profiling are delegated to a pluggable
    :class:`~repro.core.executor.Executor` (serial by default), and the
    resulting ``step_timings`` feed the computational benchmark (Figure 7).

    All execution goes through the unified plan IR: the first run of each
    mode lowers the template once via :class:`~repro.core.plan.PlanCompiler`
    and the compiled plan is reused afterwards — a refit swaps fresh
    primitives into the compiler's shared cells and re-stamps cache
    fingerprints instead of lowering again (observable through
    :attr:`plan_compilations`).

    Args:
        spec: template specification dictionary.
        hyperparameters: optional hyperparameter overrides.
        executor: executor name, class or instance that schedules the steps
            (``None`` selects the serial executor).
    """

    def __init__(self, spec: dict, hyperparameters: Optional[dict] = None,
                 executor=None):
        self.template = Template(spec)
        self.spec = self.template.spec
        self.name = self.template.name
        self.steps = self.template.steps
        self._hyperparameters = self.template.get_default_hyperparameters()
        if hyperparameters:
            self.set_hyperparameters(hyperparameters)
        self._primitives = None
        self._build_token = ""
        self._compiler: Optional[PlanCompiler] = None
        self._executor = get_executor(executor)
        self.fitted = False
        self.step_timings: Dict[str, dict] = {}

    def __getstate__(self) -> dict:
        # Compiled plans hold step closures, which cannot be pickled; the
        # compiler is rebuilt lazily (from the pickled cells and build
        # token) on the next run.
        state = self.__dict__.copy()
        state["_compiler"] = None
        return state

    # ------------------------------------------------------------------ #
    # executor selection
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> Executor:
        """The executor that schedules this pipeline's steps."""
        return self._executor

    def set_executor(self, executor) -> None:
        """Select the executor (name, class or instance) used by ``_run``."""
        self._executor = get_executor(executor)

    # ------------------------------------------------------------------ #
    # hyperparameters
    # ------------------------------------------------------------------ #
    def get_hyperparameters(self) -> dict:
        """Return the current hyperparameter assignment per step."""
        return copy.deepcopy(self._hyperparameters)

    def set_hyperparameters(self, hyperparameters: dict) -> None:
        """Update hyperparameters. Keys are step names, values are dicts.

        A flat ``{(step, name): value}`` mapping (as produced by the tuner)
        is also accepted.
        """
        flat = {}
        for key, value in hyperparameters.items():
            if isinstance(key, tuple):
                step, name = key
                flat.setdefault(step, {})[name] = value
            else:
                if not isinstance(value, dict):
                    raise PipelineError(
                        "Hyperparameters must map step names to dictionaries"
                    )
                flat.setdefault(key, {}).update(value)

        step_names = {step["name"] for step in self.steps}
        for step, values in flat.items():
            if step not in step_names:
                raise PipelineError(f"Unknown pipeline step {step!r}")
            self._hyperparameters.setdefault(step, {}).update(values)
        # A changed λ invalidates the primitives AND the compiled plans —
        # node closures read primitives through the compiler's cells, so
        # the cells must be rebuilt, not refreshed.
        self._primitives = None
        self._compiler = None
        self.fitted = False

    def get_tunable_hyperparameters(self) -> dict:
        """Expose the template's tunable hyperparameter space."""
        return self.template.get_tunable_hyperparameters()

    # ------------------------------------------------------------------ #
    # plan compilation
    # ------------------------------------------------------------------ #
    def _fresh_primitive(self, step: dict):
        values = self._hyperparameters.get(step["name"], {})
        cls = get_primitive_class(step["primitive"])
        known = cls.get_default_hyperparameters()
        usable = {key: value for key, value in values.items() if key in known}
        return get_primitive(step["primitive"], usable)

    def _rebuild_primitives(self) -> None:
        """(Re)build every step's primitive, preserving cell identity.

        Each entry of ``_primitives`` is a mutable ``[step, primitive]``
        cell: compiled plan nodes and payload factories read the primitive
        through the cell, so a refit only has to swap fresh instances into
        the existing cells (and a process worker can hand back a fitted
        replacement through the node's ``absorb`` callback) — every
        already-compiled plan sees the new build without recompiling.
        """
        # Stateful steps carry this token in their cache fingerprint so a
        # rebuild (refit or hyperparameter change) invalidates their entries.
        self._build_token = uuid.uuid4().hex
        if self._primitives is None:
            self._primitives = [[step, self._fresh_primitive(step)]
                                for step in self.steps]
        else:
            for cell in self._primitives:
                cell[1] = self._fresh_primitive(cell[0])
        if self._compiler is not None:
            self._compiler.cells = self._primitives
            self._compiler.refresh(self._build_token)

    @property
    def compiler(self) -> PlanCompiler:
        """The plan compiler lowering this pipeline's template (lazy)."""
        if self._primitives is None:
            raise NotFittedError(
                f"Pipeline {self.name!r} has no fitted primitives; call fit() "
                "before detect()"
            )
        if self._compiler is None:
            self._compiler = PlanCompiler(self._primitives, self._build_token)
        return self._compiler

    def compiled_plan(self, mode: str, exact: bool = True,
                      precision: str = None) -> ExecutionPlan:
        """The cached compiled plan for ``mode`` (lowering it on first use)."""
        return self.compiler.plan(mode, exact=exact, precision=precision)

    @property
    def plan_compilations(self) -> int:
        """How many lowering passes this pipeline has performed so far."""
        return 0 if self._compiler is None else self._compiler.compilations

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _run(self, context: dict, fit: bool, profile: bool = False,
             stream: bool = False) -> dict:
        if fit:
            self._rebuild_primitives()
        mode = "fit" if fit else ("stream" if stream else "detect")
        plan = self.compiled_plan(mode)
        self.step_timings = {}
        context, self.step_timings = self._executor.run_plan(
            plan, context, fit=fit, profile=profile
        )
        observe_step_timings(self.step_timings)
        return context

    def fit(self, data, profile: bool = False, **context_variables) -> "Pipeline":
        """Fit every step on ``data`` (a ``(timestamp, values...)`` array)."""
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        self._run(context, fit=True, profile=profile)
        self.fitted = True
        return self

    def detect(self, data, visualization: bool = False, profile: bool = False,
               **context_variables):
        """Detect anomalies in ``data``.

        Returns a list of ``(start, end, severity)`` tuples, or a tuple of
        ``(anomalies, context)`` when ``visualization`` is requested.
        """
        if not self.fitted:
            raise NotFittedError(f"Pipeline {self.name!r} must be fit before detect")
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        context = self._run(context, fit=False, profile=profile)
        anomalies = self._format_anomalies(context.get("anomalies"))
        if visualization:
            return anomalies, context
        return anomalies

    def detect_batch(self, signals, exact: bool = True, profile: bool = False,
                     precision: str = None,
                     **context_variables) -> List[List[tuple]]:
        """Detect anomalies in many signals with one batched pipeline pass.

        Instead of running the plan once per signal, the whole batch flows
        through each step together: every context variable holds a list of
        per-signal values, and each step calls the primitive's
        :meth:`~repro.core.primitive.Primitive.produce_batch` — a fused
        vectorized pass over stacked arrays for primitives that declare
        ``supports_batch``, the per-signal loop otherwise.

        With ``exact=True`` (the default) the results are guaranteed
        bitwise-identical to ``[self.detect(s) for s in signals]``; the
        batch path only changes *how* the floating-point work is
        scheduled, never the operations each signal sees. ``exact=False``
        opts into the *fused* lowering: primitives that declare
        ``supports_fused_batch`` (the LSTM and autoencoder forwards)
        concatenate the batch into single large matrix products, which
        reorders BLAS summation — results are then only guaranteed equal
        within a small numerical tolerance (see
        ``repro.benchmark.batch.PARITY_RTOL`` / ``PARITY_ATOL``), in
        exchange for a large speedup on recurrent-forward pipelines.

        Args:
            signals: sequence of ``(timestamp, values...)`` arrays. Lengths
                may differ — fused steps group stackable signals
                internally.
            exact: require bitwise parity with the per-signal loop
                (``True``) or allow tolerance-parity fused NN forwards
                (``False``).
            profile: record per-step memory with ``tracemalloc``.
            precision: ``None`` (default) or ``"float32"`` — opt-in
                reduced-precision mode: fused chains cast their float64
                inputs down to single precision, trading a further drop
                in accuracy (still tolerance-checked by the benchmark)
                for memory bandwidth. Requires ``exact=False``.
            **context_variables: extra context variables; each value must
                be a list with one entry per signal.

        Returns:
            One ``[(start, end, severity), ...]`` anomaly list per signal,
            in input order.
        """
        if not self.fitted:
            raise NotFittedError(
                f"Pipeline {self.name!r} must be fit before detect_batch"
            )
        if precision not in (None, "float32"):
            raise PipelineError(
                f"Unknown precision {precision!r}; expected None or "
                "'float32'"
            )
        if precision is not None and exact:
            raise PipelineError(
                "precision='float32' is a reduced-precision mode and "
                "requires exact=False"
            )
        arrays = [np.asarray(data, dtype=float) for data in signals]
        if not arrays:
            return []
        size = len(arrays)
        context = {"data": arrays, "events": [None] * size}
        for name, values in context_variables.items():
            values = list(values)
            if len(values) != size:
                raise PipelineError(
                    f"Batch context variable {name!r} has {len(values)} "
                    f"entries for {size} signals"
                )
            context[name] = values
        plan = self.compiled_plan("batch", exact=exact, precision=precision)
        self.step_timings = {}
        context, self.step_timings = self._executor.run_plan(
            plan, context, fit=False, profile=profile
        )
        observe_step_timings(self.step_timings)
        anomalies = context.get("anomalies")
        if anomalies is None:
            anomalies = [None] * size
        return [self._format_anomalies(entry) for entry in anomalies]

    def partial_detect(self, data, **context_variables) -> List[tuple]:
        """Detect anomalies over one sliding-window micro-batch (streaming).

        ``data`` is the stream's current window — typically the trailing
        ``window_size`` rows maintained by
        :class:`~repro.core.stream.StreamRunner`. Steps run through the same
        executor as :meth:`detect`, but through the *stream-mode* plan:
        primitives that declare ``supports_stream`` consume the window
        through :meth:`~repro.core.primitive.Primitive.update` (folding the
        new samples into running state) while every other step
        re-``produce``s over the window. The pipeline must already be
        fitted.
        """
        if not self.fitted:
            raise NotFittedError(
                f"Pipeline {self.name!r} must be fit before partial_detect"
            )
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        context = self._run(context, fit=False, stream=True)
        return self._format_anomalies(context.get("anomalies"))

    def fit_detect(self, data, **context_variables):
        """Fit on ``data`` and immediately detect anomalies in it."""
        self.fit(data, **context_variables)
        return self.detect(data, **context_variables)

    def clone(self) -> "Pipeline":
        """Return an unfitted copy with the same spec, λ and executor.

        Used by the streaming layer to refit a replacement pipeline in the
        background (drift-triggered retraining) while the current instance
        keeps serving micro-batches; the replacement is then swapped in
        atomically.
        """
        fresh = Pipeline(self.spec, hyperparameters=self.get_hyperparameters())
        fresh.set_executor(self._executor)
        return fresh

    @staticmethod
    def _format_anomalies(anomalies) -> List[tuple]:
        if anomalies is None:
            return []
        anomalies = np.asarray(anomalies)
        if anomalies.size == 0:
            return []
        formatted = []
        for row in np.atleast_2d(anomalies):
            start, end = float(row[0]), float(row[1])
            severity = float(row[2]) if len(row) > 2 else 0.0
            if len(row) > 3:
                # Multivariate pipelines append a channel-attribution
                # column (see ``channel_attribution``); univariate events
                # stay 3-tuples, bit-for-bit as before.
                formatted.append((start, end, severity, int(row[3])))
            else:
                formatted.append((start, end, severity))
        return formatted

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pipeline(name={self.name!r}, steps={len(self.steps)})"
