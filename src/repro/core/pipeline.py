"""Templates and pipelines: computational graphs of primitives.

Following the paper (§3.2), a *template* ``T = <V, E, Λ>`` is a sequence of
pipeline steps ``V`` whose data flow ``E`` is given by the variables each
primitive consumes and produces, together with the joint tunable
hyperparameter space ``Λ``. A *pipeline* ``P = <V, E, λ>`` fixes a specific
hyperparameter assignment ``λ ∈ Λ``.
"""

from __future__ import annotations

import copy
import json
import uuid
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro.core.executor import ExecutionPlan, Executor, StepNode, get_executor
from repro.core.primitive import get_primitive, get_primitive_class
from repro.exceptions import NotFittedError, PipelineError

__all__ = ["Template", "Pipeline"]


def _collect_args(context: dict, args, inputs: dict, step: dict) -> dict:
    kwargs = {}
    for arg in args:
        variable = inputs.get(arg, arg)
        if variable not in context:
            raise PipelineError(
                f"Step {step['name']!r} needs variable {variable!r} "
                "which is not present in the context"
            )
        kwargs[arg] = context[variable]
    return kwargs


class _StepPayload:
    """A picklable work unit: one step's primitive plus its wiring.

    This is what :class:`~repro.core.executor.ProcessExecutor` ships to a
    pool worker. It carries the *current* primitive instance (fitted state
    included), so it must be built fresh at dispatch time — step nodes hold
    a zero-argument factory rather than a prebuilt payload. ``run`` returns
    ``(updates, state)`` where ``state`` is the primitive whenever the call
    mutated it (a fit, or an incremental streaming update) and ``None``
    otherwise; the parent grafts returned state back through the node's
    ``absorb`` callback.
    """

    def __init__(self, step: dict, primitive, stream: bool):
        self.step = step
        self.primitive = primitive
        self.stream = stream

    @property
    def engine(self) -> str:
        return self.primitive.engine

    def run(self, context: dict, fit: bool):
        primitive = self.primitive
        step = self.step
        inputs = step.get("inputs", {})
        outputs = step.get("outputs", {})
        incremental = self.stream and primitive.supports_stream
        if fit and primitive.fit_args:
            primitive.fit(**_collect_args(context, primitive.fit_args, inputs, step))
        kwargs = _collect_args(context, primitive.produce_args, inputs, step)
        if incremental:
            produced = primitive.update(**kwargs)
        else:
            produced = primitive.produce(**kwargs)
        if not isinstance(produced, dict):
            raise PipelineError(
                f"Primitive {primitive.name!r} must return a dict of outputs"
            )
        updates = {outputs.get(out, out): value for out, value in produced.items()}
        mutated = (fit and bool(primitive.fit_args)) or incremental
        return updates, (primitive if mutated else None)


class _BatchStepPayload:
    """A picklable work unit running one step over a whole signal batch.

    The batch-mode counterpart of :class:`_StepPayload`: every context
    variable holds a *list* with one entry per signal, and the step runs
    :meth:`~repro.core.primitive.Primitive.produce_batch` once — a fused
    vectorized pass for primitives that declare ``supports_batch``, the
    per-signal loop otherwise. Batch plans are detect-only, so ``run``
    never fits and never returns mutated primitive state.
    """

    def __init__(self, step: dict, primitive):
        self.step = step
        self.primitive = primitive

    @property
    def engine(self) -> str:
        return self.primitive.engine

    def run(self, context: dict, fit: bool):
        if fit:
            raise PipelineError(
                "Batch plans are detect-only; fit the pipeline per signal "
                "before calling detect_batch"
            )
        primitive = self.primitive
        step = self.step
        kwargs = _collect_args(context, primitive.produce_args,
                               step.get("inputs", {}), step)
        produced = primitive.produce_batch(**kwargs)
        if not isinstance(produced, dict):
            raise PipelineError(
                f"Primitive {primitive.name!r} must return a dict of outputs"
            )
        outputs = step.get("outputs", {})
        updates = {outputs.get(out, out): value for out, value in produced.items()}
        return updates, None


class Template:
    """A pipeline template with an open hyperparameter space.

    Args:
        spec: dictionary with keys ``name``, optional ``description``, and
            ``steps`` — a list of step dictionaries with keys ``primitive``
            (registry name), optional ``name`` (unique step name), optional
            ``hyperparameters``, and optional ``inputs`` / ``outputs``
            mappings from primitive argument names to context variable names.
    """

    def __init__(self, spec: dict):
        if "steps" not in spec or not spec["steps"]:
            raise PipelineError("A template spec must declare at least one step")
        self.spec = copy.deepcopy(spec)
        self.name = spec.get("name", "template")
        self.description = spec.get("description", "")
        self.steps = self.spec["steps"]
        self._assign_step_names()
        self._validate()

    def _assign_step_names(self) -> None:
        seen = set()
        for step in self.steps:
            if "primitive" not in step:
                raise PipelineError(f"Step {step!r} does not declare a primitive")
            name = step.get("name", step["primitive"])
            base = name
            suffix = 1
            while name in seen:
                suffix += 1
                name = f"{base}#{suffix}"
            step["name"] = name
            seen.add(name)

    def _validate(self) -> None:
        """Check that every primitive exists and inputs are producible."""
        available = {"data", "events"}
        graph = nx.DiGraph()
        previous_producer = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            graph.add_node(step["name"])
            inputs = step.get("inputs", {})
            outputs = step.get("outputs", {})

            for arg in set(cls.produce_args) | set(cls.fit_args):
                variable = inputs.get(arg, arg)
                if variable not in available:
                    raise PipelineError(
                        f"Step {step['name']!r} requires variable {variable!r} "
                        "which no earlier step produces"
                    )
                if variable in previous_producer:
                    graph.add_edge(previous_producer[variable], step["name"])

            for out in cls.produce_output:
                variable = outputs.get(out, out)
                available.add(variable)
                previous_producer[variable] = step["name"]

        if not nx.is_directed_acyclic_graph(graph):
            raise PipelineError(f"Template {self.name!r} contains a cycle")
        self.graph = graph

    # ------------------------------------------------------------------ #
    def get_tunable_hyperparameters(self) -> Dict[str, Dict[str, dict]]:
        """Return ``Λ``: the tunable hyperparameters of every step."""
        space = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            tunable = cls.get_tunable_hyperparameters()
            if tunable:
                space[step["name"]] = tunable
        return space

    def get_default_hyperparameters(self) -> Dict[str, dict]:
        """Return the default ``λ`` for every step (fixed values merged in)."""
        defaults = {}
        for step in self.steps:
            cls = get_primitive_class(step["primitive"])
            values = cls.get_default_hyperparameters()
            values.update(step.get("hyperparameters", {}))
            defaults[step["name"]] = values
        return defaults

    def create_pipeline(self, hyperparameters: Optional[dict] = None) -> "Pipeline":
        """Instantiate a :class:`Pipeline` with a fixed ``λ``."""
        return Pipeline(self.spec, hyperparameters=hyperparameters)

    @property
    def engines(self) -> List[str]:
        """Engine category of every step, in order."""
        return [get_primitive_class(step["primitive"]).engine for step in self.steps]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Template(name={self.name!r}, steps={len(self.steps)})"


class Pipeline:
    """An executable anomaly detection pipeline.

    The pipeline runs its steps over a shared *context* — a dictionary of
    named variables. ``fit`` calls every step's ``fit`` and ``produce``;
    ``detect`` only calls ``produce``. Step scheduling, per-step timing and
    memory profiling are delegated to a pluggable
    :class:`~repro.core.executor.Executor` (serial by default), and the
    resulting ``step_timings`` feed the computational benchmark (Figure 7).

    Args:
        spec: template specification dictionary.
        hyperparameters: optional hyperparameter overrides.
        executor: executor name, class or instance that schedules the steps
            (``None`` selects the serial executor).
    """

    def __init__(self, spec: dict, hyperparameters: Optional[dict] = None,
                 executor=None):
        self.template = Template(spec)
        self.spec = self.template.spec
        self.name = self.template.name
        self.steps = self.template.steps
        self._hyperparameters = self.template.get_default_hyperparameters()
        if hyperparameters:
            self.set_hyperparameters(hyperparameters)
        self._primitives = None
        self._build_token = ""
        self._plan = None
        self._stream_plan = None
        self._batch_plan = None
        self._executor = get_executor(executor)
        self.fitted = False
        self.step_timings: Dict[str, dict] = {}

    def __getstate__(self) -> dict:
        # The cached plans hold step closures, which cannot be pickled;
        # they are rebuilt lazily on the next run.
        state = self.__dict__.copy()
        state["_plan"] = None
        state["_stream_plan"] = None
        state["_batch_plan"] = None
        return state

    # ------------------------------------------------------------------ #
    # executor selection
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> Executor:
        """The executor that schedules this pipeline's steps."""
        return self._executor

    def set_executor(self, executor) -> None:
        """Select the executor (name, class or instance) used by ``_run``."""
        self._executor = get_executor(executor)

    # ------------------------------------------------------------------ #
    # hyperparameters
    # ------------------------------------------------------------------ #
    def get_hyperparameters(self) -> dict:
        """Return the current hyperparameter assignment per step."""
        return copy.deepcopy(self._hyperparameters)

    def set_hyperparameters(self, hyperparameters: dict) -> None:
        """Update hyperparameters. Keys are step names, values are dicts.

        A flat ``{(step, name): value}`` mapping (as produced by the tuner)
        is also accepted.
        """
        flat = {}
        for key, value in hyperparameters.items():
            if isinstance(key, tuple):
                step, name = key
                flat.setdefault(step, {})[name] = value
            else:
                if not isinstance(value, dict):
                    raise PipelineError(
                        "Hyperparameters must map step names to dictionaries"
                    )
                flat.setdefault(key, {}).update(value)

        step_names = {step["name"] for step in self.steps}
        for step, values in flat.items():
            if step not in step_names:
                raise PipelineError(f"Unknown pipeline step {step!r}")
            self._hyperparameters.setdefault(step, {}).update(values)
        self._primitives = None
        self._plan = None
        self._stream_plan = None
        self._batch_plan = None
        self.fitted = False

    def get_tunable_hyperparameters(self) -> dict:
        """Expose the template's tunable hyperparameter space."""
        return self.template.get_tunable_hyperparameters()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _build_primitives(self):
        # Each entry is a mutable [step, primitive] cell: step runners and
        # payload factories read the primitive through the cell, so a worker
        # process can hand back a fitted replacement (absorbed into the cell)
        # and every later dispatch sees it.
        primitives = []
        for step in self.steps:
            values = self._hyperparameters.get(step["name"], {})
            cls = get_primitive_class(step["primitive"])
            known = cls.get_default_hyperparameters()
            usable = {key: value for key, value in values.items() if key in known}
            primitives.append([step, get_primitive(step["primitive"], usable)])
        # Stateful steps carry this token in their cache fingerprint so a
        # rebuild (refit or hyperparameter change) invalidates their entries.
        self._build_token = uuid.uuid4().hex
        return primitives

    def _step_fingerprint(self, step: dict, primitive) -> str:
        identity = {
            "primitive": step["primitive"],
            "inputs": step.get("inputs", {}),
            "outputs": step.get("outputs", {}),
            "hyperparameters": primitive.hyperparameters,
        }
        if primitive.fit_args:
            identity["build"] = self._build_token
        return json.dumps(identity, sort_keys=True, default=repr)

    def _build_plan(self, stream: bool = False) -> ExecutionPlan:
        nodes = []
        for entry in self._primitives:
            step, primitive = entry
            inputs = step.get("inputs", {})
            outputs = step.get("outputs", {})
            reads = tuple(sorted({
                inputs.get(arg, arg)
                for arg in set(primitive.produce_args) | set(primitive.fit_args)
            }))
            writes = tuple(outputs.get(out, out) for out in primitive.produce_output)
            if stream and primitive.supports_stream:
                # An incremental step mutates internal state on every call,
                # so its outputs must never be served from a memo cache.
                cacheable = lambda fit: False  # noqa: E731
            else:
                # A step with no fit state is deterministic given its inputs
                # and hyperparameters; a fitted stateful step is only safe to
                # cache in produce mode (the fingerprint pins its build).
                cacheable = (lambda fit, stateful=bool(primitive.fit_args):
                             not (fit and stateful))
            nodes.append(StepNode(
                name=step["name"],
                engine=primitive.engine,
                reads=reads,
                writes=writes,
                execute=self._make_step_runner(entry, stream=stream),
                fingerprint=self._step_fingerprint(step, primitive),
                cacheable=cacheable,
                payload=(lambda entry=entry, stream=stream:
                         _StepPayload(entry[0], entry[1], stream)),
                absorb=(lambda fitted, entry=entry:
                        entry.__setitem__(1, fitted)),
            ))
        return ExecutionPlan(nodes)

    def _build_batch_plan(self) -> ExecutionPlan:
        # The batch plan mirrors the produce-mode plan — same reads, writes
        # and dependency structure — but every context variable holds a list
        # of per-signal values and each node runs `produce_batch` once over
        # the whole batch. The fingerprint is namespaced so a caching
        # executor never serves a single-signal entry for a batch key (the
        # input digests already differ, the namespace makes it structural).
        nodes = []
        for entry in self._primitives:
            step, primitive = entry
            inputs = step.get("inputs", {})
            outputs = step.get("outputs", {})
            reads = tuple(sorted({
                inputs.get(arg, arg) for arg in primitive.produce_args
            }))
            writes = tuple(outputs.get(out, out) for out in primitive.produce_output)
            nodes.append(StepNode(
                name=step["name"],
                engine=primitive.engine,
                reads=reads,
                writes=writes,
                execute=self._make_batch_step_runner(entry),
                fingerprint="batch:" + self._step_fingerprint(step, primitive),
                cacheable=lambda fit: not fit,
                payload=(lambda entry=entry:
                         _BatchStepPayload(entry[0], entry[1])),
            ))
        return ExecutionPlan(nodes)

    def _make_batch_step_runner(self, entry: list):
        def execute(context: dict, fit: bool) -> dict:
            updates, _ = _BatchStepPayload(entry[0], entry[1]).run(context, fit)
            return updates

        return execute

    def _make_step_runner(self, entry: list, stream: bool = False):
        def execute(context: dict, fit: bool) -> dict:
            # The primitive is read through the cell at call time, and runs
            # in-process: mutation (fit / update) lands on the shared object
            # directly, so there is no state to absorb.
            updates, _ = _StepPayload(entry[0], entry[1], stream).run(context, fit)
            return updates

        return execute

    def _run(self, context: dict, fit: bool, profile: bool = False,
             stream: bool = False) -> dict:
        if fit:
            self._primitives = self._build_primitives()
            self._plan = None
            self._stream_plan = None
            self._batch_plan = None
        elif self._primitives is None:
            raise NotFittedError(
                f"Pipeline {self.name!r} has no fitted primitives; call fit() "
                "before detect()"
            )
        if stream:
            if self._stream_plan is None:
                self._stream_plan = self._build_plan(stream=True)
            plan = self._stream_plan
        else:
            if self._plan is None:
                self._plan = self._build_plan()
            plan = self._plan
        self.step_timings = {}
        context, self.step_timings = self._executor.run_plan(
            plan, context, fit=fit, profile=profile
        )
        return context

    @staticmethod
    def _collect(context: dict, args, inputs: dict, step: dict) -> dict:
        return _collect_args(context, args, inputs, step)

    def fit(self, data, profile: bool = False, **context_variables) -> "Pipeline":
        """Fit every step on ``data`` (a ``(timestamp, values...)`` array)."""
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        self._run(context, fit=True, profile=profile)
        self.fitted = True
        return self

    def detect(self, data, visualization: bool = False, profile: bool = False,
               **context_variables):
        """Detect anomalies in ``data``.

        Returns a list of ``(start, end, severity)`` tuples, or a tuple of
        ``(anomalies, context)`` when ``visualization`` is requested.
        """
        if not self.fitted:
            raise NotFittedError(f"Pipeline {self.name!r} must be fit before detect")
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        context = self._run(context, fit=False, profile=profile)
        anomalies = self._format_anomalies(context.get("anomalies"))
        if visualization:
            return anomalies, context
        return anomalies

    def detect_batch(self, signals, profile: bool = False,
                     **context_variables) -> List[List[tuple]]:
        """Detect anomalies in many signals with one batched pipeline pass.

        Instead of running the plan once per signal, the whole batch flows
        through each step together: every context variable holds a list of
        per-signal values, and each step calls the primitive's
        :meth:`~repro.core.primitive.Primitive.produce_batch` — a fused
        vectorized pass over stacked arrays for primitives that declare
        ``supports_batch``, the per-signal loop otherwise. The results are
        guaranteed bitwise-identical to ``[self.detect(s) for s in
        signals]``; the batch path only changes *how* the floating-point
        work is scheduled, never the operations each signal sees.

        Args:
            signals: sequence of ``(timestamp, values...)`` arrays. Lengths
                may differ — fused steps group stackable signals
                internally.
            profile: record per-step memory with ``tracemalloc``.
            **context_variables: extra context variables; each value must
                be a list with one entry per signal.

        Returns:
            One ``[(start, end, severity), ...]`` anomaly list per signal,
            in input order.
        """
        if not self.fitted:
            raise NotFittedError(
                f"Pipeline {self.name!r} must be fit before detect_batch"
            )
        arrays = [np.asarray(data, dtype=float) for data in signals]
        if not arrays:
            return []
        size = len(arrays)
        context = {"data": arrays, "events": [None] * size}
        for name, values in context_variables.items():
            values = list(values)
            if len(values) != size:
                raise PipelineError(
                    f"Batch context variable {name!r} has {len(values)} "
                    f"entries for {size} signals"
                )
            context[name] = values
        if self._batch_plan is None:
            self._batch_plan = self._build_batch_plan()
        self.step_timings = {}
        context, self.step_timings = self._executor.run_plan(
            self._batch_plan, context, fit=False, profile=profile
        )
        anomalies = context.get("anomalies")
        if anomalies is None:
            anomalies = [None] * size
        return [self._format_anomalies(entry) for entry in anomalies]

    def partial_detect(self, data, **context_variables) -> List[tuple]:
        """Detect anomalies over one sliding-window micro-batch (streaming).

        ``data`` is the stream's current window — typically the trailing
        ``window_size`` rows maintained by
        :class:`~repro.core.stream.StreamRunner`. Steps run through the same
        executor as :meth:`detect`, but in *stream mode*: primitives that
        declare ``supports_stream`` consume the window through
        :meth:`~repro.core.primitive.Primitive.update` (folding the new
        samples into running state) while every other step re-``produce``s
        over the window. The pipeline must already be fitted.
        """
        if not self.fitted:
            raise NotFittedError(
                f"Pipeline {self.name!r} must be fit before partial_detect"
            )
        context = {"data": np.asarray(data, dtype=float), "events": None}
        context.update(context_variables)
        context = self._run(context, fit=False, stream=True)
        return self._format_anomalies(context.get("anomalies"))

    def fit_detect(self, data, **context_variables):
        """Fit on ``data`` and immediately detect anomalies in it."""
        self.fit(data, **context_variables)
        return self.detect(data, **context_variables)

    def clone(self) -> "Pipeline":
        """Return an unfitted copy with the same spec, λ and executor.

        Used by the streaming layer to refit a replacement pipeline in the
        background (drift-triggered retraining) while the current instance
        keeps serving micro-batches; the replacement is then swapped in
        atomically.
        """
        fresh = Pipeline(self.spec, hyperparameters=self.get_hyperparameters())
        fresh.set_executor(self._executor)
        return fresh

    @staticmethod
    def _format_anomalies(anomalies) -> List[tuple]:
        if anomalies is None:
            return []
        anomalies = np.asarray(anomalies)
        if anomalies.size == 0:
            return []
        formatted = []
        for row in np.atleast_2d(anomalies):
            start, end = float(row[0]), float(row[1])
            severity = float(row[2]) if len(row) > 2 else 0.0
            formatted.append((start, end, severity))
        return formatted

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pipeline(name={self.name!r}, steps={len(self.steps)})"
