"""Dataset-level analysis: run a pipeline over a dataset and log everything.

The core of the framework "allows users to train and benchmark pipelines
and to predict and store anomalies" (paper §3.1). :func:`analyze` is that
glue: it runs one pipeline over every signal of a dataset, records the
experiment / datarun / signalrun / event trail in the knowledge base, and
returns a report that the REST API and the HIL tools can work from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.sintel import Sintel
from repro.data.signal import Dataset, Signal
from repro.db.explorer import SintelExplorer
from repro.evaluation import overlapping_segment_scores

__all__ = ["analyze", "AnalysisReport"]


@dataclass
class AnalysisReport:
    """Outcome of one :func:`analyze` run."""

    experiment_id: str
    datarun_id: str
    pipeline: str
    signal_results: List[dict] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        """Total number of detected events across signals."""
        return sum(result["n_events"] for result in self.signal_results)

    @property
    def n_failed(self) -> int:
        """Number of signals whose run failed."""
        return sum(1 for result in self.signal_results
                   if result["status"] == "error")

    def mean_score(self, metric: str = "f1") -> Optional[float]:
        """Mean quality score across scored signals, or None if unscored."""
        values = [result["scores"][metric] for result in self.signal_results
                  if result.get("scores")]
        if not values:
            return None
        return float(sum(values) / len(values))


def analyze(dataset: Union[Dataset, List[Signal]], pipeline: str,
            explorer: Optional[SintelExplorer] = None,
            pipeline_options: Optional[dict] = None,
            hyperparameters: Optional[dict] = None,
            experiment_name: Optional[str] = None,
            project: str = "default",
            evaluate: bool = True) -> AnalysisReport:
    """Run ``pipeline`` over every signal of ``dataset`` and log the results.

    Args:
        dataset: a :class:`Dataset` or a plain list of signals.
        pipeline: registered pipeline name.
        explorer: knowledge base to record into (a fresh in-memory one is
            created when omitted).
        pipeline_options: spec-factory options (window sizes, epochs, ...).
        hyperparameters: hyperparameter overrides for the pipeline.
        experiment_name: name recorded for the experiment; generated from
            the dataset and pipeline names when omitted.
        evaluate: score detections against each signal's ground-truth
            anomalies (when the signal has any).

    Returns:
        An :class:`AnalysisReport` with one entry per signal.
    """
    explorer = explorer or SintelExplorer()
    signals = list(dataset) if not isinstance(dataset, Dataset) else list(dataset)
    dataset_name = dataset.name if isinstance(dataset, Dataset) else "signals"

    dataset_doc = explorer.store["datasets"].find_one({"name": dataset_name})
    dataset_id = dataset_doc["_id"] if dataset_doc else explorer.add_dataset(dataset_name)

    template_doc = explorer.store["templates"].find_one({"name": pipeline})
    template_id = template_doc["_id"] if template_doc else explorer.add_template(
        pipeline, {"pipeline": pipeline, "options": pipeline_options or {}}
    )
    run_number = len(explorer.store["experiments"]) + 1
    pipeline_id = explorer.add_pipeline(
        f"{pipeline}@{int(time.time())}#{run_number}", template_id,
        hyperparameters or {}
    )

    experiment_name = experiment_name or (
        f"{dataset_name}-{pipeline}-run{run_number}"
    )
    experiment_id = explorer.add_experiment(experiment_name, project=project,
                                            dataset=dataset_name, pipeline=pipeline)
    datarun_id = explorer.add_datarun(experiment_id, pipeline_id)

    report = AnalysisReport(experiment_id=experiment_id, datarun_id=datarun_id,
                            pipeline=pipeline)

    known_signals = {doc["name"]: doc["_id"]
                     for doc in explorer.get_signals(dataset_id=dataset_id)}

    for signal in signals:
        signal_id = known_signals.get(signal.name) or explorer.add_signal(dataset_id,
                                                                          signal)
        known_signals[signal.name] = signal_id
        signalrun_id = explorer.add_signalrun(datarun_id, signal_id)
        entry = {"signal": signal.name, "signal_id": signal_id,
                 "signalrun_id": signalrun_id, "status": "ok", "n_events": 0,
                 "scores": None}
        try:
            model = Sintel(pipeline, hyperparameters=hyperparameters,
                           **(pipeline_options or {}))
            detected = model.fit_detect(signal.to_array())
            explorer.add_detected_events(signalrun_id, signal_id, detected)
            entry["n_events"] = len(detected)
            if evaluate and signal.anomalies:
                entry["scores"] = overlapping_segment_scores(signal.anomalies,
                                                             detected)
            metrics = entry["scores"] or {}
            explorer.end_signalrun(signalrun_id, status="done",
                                   n_events=len(detected), **metrics)
        except Exception as error:  # noqa: BLE001 - a failing signal is a result
            entry["status"] = "error"
            entry["error"] = str(error)
            explorer.end_signalrun(signalrun_id, status="error", error=str(error))
        report.signal_results.append(entry)

    explorer.end_datarun(datarun_id, status="done")
    return report
