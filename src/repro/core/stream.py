"""Streaming execution over fitted pipelines (paper §5, "streaming data").

The paper deploys Sintel pipelines against live signals and calls for
updating them "when drift is observed in the streaming data". This module
provides that execution path:

* :class:`StreamRunner` wraps a *fitted* :class:`~repro.core.pipeline.Pipeline`
  and consumes a signal as a sequence of micro-batches. It maintains a
  sliding window of raw rows, compiles each micro-batch into a stream-mode
  :class:`~repro.core.executor.ExecutionPlan`
  (via :meth:`Pipeline.partial_detect`) and runs it through whichever
  executor the pipeline uses;
* detections from overlapping windows are reconciled into
  :class:`StreamEvent` records with **stable ids** — an anomaly spanning
  many micro-batches keeps one id while its boundaries refine, and the
  event *closes* once the window has slid past it;
* a :class:`~repro.streaming.drift.DriftMonitor` watches the raw values;
  confirmed drift triggers a **background refit** of a pipeline clone (run
  through ``Executor.map``) followed by an atomic swap, with hysteresis so
  a noisy stretch cannot cause a retrain storm.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.pipeline import Pipeline
from repro.exceptions import NotFittedError, StreamError
from repro.streaming.drift import DriftMonitor, PageHinkley

__all__ = ["StreamEvent", "StreamRunner"]


@dataclass
class StreamEvent:
    """One anomaly surfaced by a stream, with a stable identity.

    An event is *open* while the sliding window still covers (part of) it:
    subsequent micro-batches may refine its boundaries or retract it if the
    re-examined window no longer flags it. Once the window slides past the
    event's end it becomes *closed* and is immutable.
    """

    event_id: str
    start: float
    end: float
    severity: float
    status: str = "open"
    first_batch: int = 0
    last_batch: int = 0
    metadata: dict = field(default_factory=dict)

    def to_tuple(self) -> tuple:
        """The ``(start, end, severity)`` view used by batch consumers."""
        return (self.start, self.end, self.severity)

    def to_dict(self) -> dict:
        """JSON-serializable view of the event."""
        payload = {
            "id": self.event_id,
            "start": self.start,
            "end": self.end,
            "severity": self.severity,
            "status": self.status,
            "first_batch": self.first_batch,
            "last_batch": self.last_batch,
        }
        if "channel" in self.metadata:
            # Channel attribution from a multivariate pipeline.
            payload["channel"] = self.metadata["channel"]
        return payload


class StreamRunner:
    """Incremental anomaly detection over a fitted pipeline.

    Args:
        pipeline: a fitted :class:`~repro.core.pipeline.Pipeline` (or a
            :class:`~repro.core.sintel.Sintel`, unwrapped automatically).
        window_size: raw rows retained in the sliding window.
        warmup: minimum buffered rows before detection starts.
        drift_detector: optional detector (``update(value) -> bool`` plus
            ``reset()``) fed the first value channel of every batch. Pass
            ``None`` to disable drift monitoring; pass ``"default"`` for a
            :class:`~repro.streaming.drift.PageHinkley` with stock settings.
        drift_cooldown: samples the monitor ignores after a confirmed drift.
        retrain: whether confirmed drift triggers a background refit over
            the current window followed by an atomic pipeline swap.
        retrain_hysteresis: minimum samples between retrain launches
            (defaults to ``window_size``). Together with the single
            in-flight-retrain rule this prevents retrain storms.
        on_event: optional callback invoked with every :class:`StreamEvent`
            at the moment it closes (used for persistence).
    """

    def __init__(self, pipeline, window_size: int = 500, warmup: int = 32,
                 drift_detector="default", drift_cooldown: int = 50,
                 retrain: bool = True,
                 retrain_hysteresis: Optional[int] = None,
                 on_event: Optional[Callable[[StreamEvent], None]] = None):
        pipeline = getattr(pipeline, "pipeline", pipeline)
        if not isinstance(pipeline, Pipeline):
            raise StreamError(
                f"StreamRunner needs a Pipeline, got {type(pipeline).__name__}"
            )
        if not pipeline.fitted:
            raise NotFittedError("StreamRunner requires a fitted pipeline")
        if window_size < 8:
            raise StreamError("window_size must be at least 8 rows")
        if not 1 <= warmup <= window_size:
            raise StreamError("warmup must be in [1, window_size]")

        self._pipeline = pipeline
        self.window_size = int(window_size)
        self.warmup = int(warmup)
        self.on_event = on_event

        if drift_detector == "default":
            drift_detector = PageHinkley()
        self.monitor: Optional[DriftMonitor] = None
        if drift_detector is not None:
            self.monitor = DriftMonitor(
                drift_detector, on_drift=self._on_drift, cooldown=drift_cooldown
            )

        self.retrain = bool(retrain)
        self.retrain_hysteresis = (int(retrain_hysteresis)
                                   if retrain_hysteresis is not None
                                   else self.window_size)
        self.retrains = 0
        self.last_retrain_at: Optional[float] = None
        self.retrain_error: Optional[str] = None

        self._buffer: Optional[np.ndarray] = None
        self._samples_seen = 0
        self._batches = 0
        self._events: dict = {}
        self._event_counter = 0
        self._closed = False

        self._swap_lock = threading.Lock()
        # Guards the event registry: _reconcile mutates it on the ingest
        # thread while pollers snapshot it from request threads.
        self._events_lock = threading.Lock()
        self._retrain_thread: Optional[threading.Thread] = None
        self._drift_pending = False
        self._monitor_reset_pending = False
        self._last_retrain_sample: Optional[int] = None
        # The standby pipeline refits are trained on. Created (via clone)
        # on the first retrain and thereafter ping-ponged with the serving
        # pipeline on every swap, so each retrain reuses a pipeline whose
        # fit-mode plan is already compiled — a refit only swaps fresh
        # primitives into the plan's cells instead of lowering again.
        self._spare: Optional[Pipeline] = None

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def pipeline(self) -> Pipeline:
        """The pipeline currently serving micro-batches (may be swapped)."""
        with self._swap_lock:
            return self._pipeline

    @property
    def samples_seen(self) -> int:
        """Total raw rows ingested so far."""
        return self._samples_seen

    @property
    def ready(self) -> bool:
        """Whether the buffer holds enough rows for detection (warmup met)."""
        return self._buffer is not None and len(self._buffer) >= self.warmup

    @property
    def window(self) -> Optional[np.ndarray]:
        """The buffered sliding window (rows of ``timestamp, values...``)."""
        return self._buffer

    @property
    def drift_pending(self) -> bool:
        """Whether the monitor confirmed drift that no refit consumed yet."""
        return self._drift_pending

    def clear_drift(self) -> None:
        """Mark pending drift as consumed (an external refit was launched)."""
        self._drift_pending = False
        self._last_retrain_sample = self._samples_seen

    @property
    def events(self) -> List[StreamEvent]:
        """Every live event (open and closed), ordered by start time."""
        with self._events_lock:
            snapshot = list(self._events.values())
        return sorted(snapshot, key=lambda event: event.start)

    def anomalies(self) -> List[tuple]:
        """All events as ``(start, end, severity)`` tuples."""
        return [event.to_tuple() for event in self.events]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def send(self, batch) -> List[StreamEvent]:
        """Ingest one micro-batch of ``(timestamp, values...)`` rows.

        Returns the events that changed in this batch (created, updated or
        closed). Calls must be serialized by the caller — the runner
        guarantees in-order processing, not concurrent ``send`` safety.
        """
        if not self._ingest(batch):
            return []

        changed: List[StreamEvent] = []
        if self.ready:
            with self._swap_lock:
                pipeline = self._pipeline
            detections = pipeline.partial_detect(self._buffer)
            changed = self._reconcile(detections)

        self._maybe_retrain()
        return changed

    def _ingest(self, batch) -> bool:
        """Validate + buffer one micro-batch; True when rows were absorbed.

        This is the ingestion half of :meth:`send` — buffer maintenance,
        counters and drift monitoring, but no detection. The fleet plane
        (:mod:`repro.core.fleet`) calls it directly and drives detection
        through a coalesced stream-batch plan instead of
        :meth:`Pipeline.partial_detect`, feeding the results back through
        :meth:`apply_detections` so the event registry behaves identically.
        """
        if self._closed:
            raise StreamError("The stream has been closed")
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.ndim != 2 or batch.shape[1] < 2:
            raise StreamError(
                "A micro-batch must be a 2D (timestamp, values...) array"
            )
        if len(batch) == 0:
            return False
        timestamps = batch[:, 0]
        if np.any(np.diff(timestamps) <= 0):
            raise StreamError("Batch timestamps must be strictly increasing")
        if (self._buffer is not None and len(self._buffer)
                and timestamps[0] <= self._buffer[-1, 0]):
            raise StreamError(
                "Batch timestamps must continue after the buffered window"
            )

        if self._buffer is None:
            self._buffer = batch.copy()
        else:
            self._buffer = np.vstack([self._buffer, batch])
        if len(self._buffer) > self.window_size:
            self._buffer = self._buffer[-self.window_size:]
        self._samples_seen += len(batch)
        self._batches += 1

        if self.monitor is not None:
            # A completed retrain requests the reset; it is applied here,
            # on the ingest thread, so it can never race a consume().
            if self._monitor_reset_pending:
                self._monitor_reset_pending = False
                self._drift_pending = False
                self.monitor.reset()
            self.monitor.consume(batch[:, 1])
        return True

    def apply_detections(self, detections: List[tuple]) -> List[StreamEvent]:
        """Reconcile externally computed detections for the current window.

        ``detections`` must be what :meth:`Pipeline.partial_detect` would
        have returned for the buffered window — the fleet plane computes
        them in one stream-batch plan across many runners and demuxes each
        runner's share here, so event ids, refinement and closing are
        bitwise identical to an independent :meth:`send` loop.
        """
        if self._buffer is None or not len(self._buffer):
            return []
        return self._reconcile(detections)

    def close(self) -> List[StreamEvent]:
        """Close the stream: join any retrain, close every open event."""
        if self._closed:
            return []
        self._closed = True
        self.join_retrain()
        if self.monitor is not None and self._monitor_reset_pending:
            self._monitor_reset_pending = False
            self.monitor.reset()
        closed = []
        for event in self.events:
            if event.status == "open":
                self._close_event(event)
                closed.append(event)
        return closed

    # ------------------------------------------------------------------ #
    # event reconciliation
    # ------------------------------------------------------------------ #
    def _reconcile(self, detections: List[tuple]) -> List[StreamEvent]:
        """Merge one window's detections into the stable event registry.

        The current window's detection is the authoritative estimate for
        the range it covers: open events fully inside the window are
        re-anchored to their matching detection or retracted when no longer
        flagged; events reaching back before the window keep their frozen
        prefix and only extend forward. Events the window has slid past are
        closed and become immutable.
        """
        with self._events_lock:
            return self._reconcile_locked(detections)

    def _reconcile_locked(self, detections: List[tuple]) -> List[StreamEvent]:
        window_start = float(self._buffer[0, 0])
        changed: List[StreamEvent] = []
        open_events = [event for event in self._events.values()
                       if event.status == "open"]
        matched_events = set()
        matched_detections = set()

        for position, detection in enumerate(detections):
            start, end, severity = detection[:3]
            best = None
            best_overlap = -np.inf
            for event in open_events:
                if event.event_id in matched_events:
                    continue
                overlap = min(end, event.end) - max(start, event.start)
                if overlap >= 0 and overlap > best_overlap:
                    best = event
                    best_overlap = overlap
            if best is None:
                continue
            matched_events.add(best.event_id)
            matched_detections.add(position)
            new_start = best.start if best.start < window_start else start
            if (new_start, end, severity) != (best.start, best.end, best.severity):
                best.start = new_start
                best.end = end
                best.severity = max(best.severity, severity)
                best.last_batch = self._batches
                if len(detection) > 3:
                    best.metadata["channel"] = int(detection[3])
                changed.append(best)

        for event in open_events:
            if event.event_id in matched_events:
                continue
            if event.start >= window_start:
                # Fully re-examined and no longer flagged: retract.
                del self._events[event.event_id]
            else:
                # The window slid past it (or its visible part cleared):
                # freeze what was seen.
                self._close_event(event)
                changed.append(event)

        for position, detection in enumerate(detections):
            if position in matched_detections:
                continue
            start, end, severity = detection[:3]
            self._event_counter += 1
            event = StreamEvent(
                event_id=f"evt-{self._event_counter}",
                start=float(start), end=float(end), severity=float(severity),
                first_batch=self._batches, last_batch=self._batches,
                metadata={"channel": int(detection[3])}
                if len(detection) > 3 else {},
            )
            self._events[event.event_id] = event
            changed.append(event)

        # Close events whose whole extent has left the window.
        for event in self._events.values():
            if event.status == "open" and event.end < window_start:
                self._close_event(event)
                if event not in changed:
                    changed.append(event)
        return changed

    def _close_event(self, event: StreamEvent) -> None:
        event.status = "closed"
        event.last_batch = self._batches
        if self.on_event is not None:
            self.on_event(event)

    # ------------------------------------------------------------------ #
    # drift-triggered retraining
    # ------------------------------------------------------------------ #
    def _on_drift(self, index: int) -> None:
        self._drift_pending = True

    def _maybe_retrain(self) -> None:
        if not (self.retrain and self._drift_pending):
            return
        if self._retrain_thread is not None and self._retrain_thread.is_alive():
            return  # one retrain in flight at a time
        if (self._last_retrain_sample is not None
                and self._samples_seen - self._last_retrain_sample
                < self.retrain_hysteresis):
            return  # hysteresis: too soon after the previous retrain
        if self._buffer is None or len(self._buffer) < self.warmup:
            return
        self._drift_pending = False
        self._last_retrain_sample = self._samples_seen
        snapshot = self._buffer.copy()
        self._retrain_thread = threading.Thread(
            target=self._retrain, args=(snapshot,), daemon=True,
            name="sintel-stream-retrain",
        )
        self._retrain_thread.start()

    def _retrain(self, snapshot: np.ndarray) -> None:
        with self._swap_lock:
            serving = self._pipeline
            if self._spare is None:
                self._spare = serving.clone()
            standby = self._spare

        # Deliberately a closure: it cannot cross a process boundary, so
        # ProcessExecutor.map degrades to its in-process serial fallback
        # and the refit always mutates THIS standby object — the compiled
        # fit-mode plan is reused on every backend (a worker-side fit
        # would return a pickled copy whose compiler was dropped).
        def refit(data):
            standby.fit(data)
            return standby

        try:
            fitted = serving.executor.map(refit, [snapshot])[0]
        except Exception as error:  # noqa: BLE001 - surfaced via state()
            self.retrain_error = str(error)
            return
        with self._swap_lock:
            # Atomic swap: the freshly fitted standby starts serving and
            # the previous serving pipeline becomes the next standby, so
            # after the first cycle no retrain ever compiles a new plan.
            self._spare = self._pipeline
            self._pipeline = fitted
        self.retrains += 1
        self.last_retrain_at = time.time()
        self.retrain_error = None
        # The monitor is owned by the ingest thread; request the post-retrain
        # reset instead of mutating detector state from this thread.
        if self.monitor is not None:
            self._monitor_reset_pending = True

    def adopt_pipeline(self, fitted: Pipeline) -> Pipeline:
        """Atomically swap in an externally refitted pipeline.

        Used by the fleet scheduler (:mod:`repro.core.fleet`), whose tiered
        refit loop owns standby pipelines instead of this runner's private
        ``_spare``. Returns the previous serving pipeline so the caller can
        recycle it as a warm standby, and performs the same bookkeeping as
        an internal retrain (counter, hysteresis anchor, monitor reset
        request applied on the next ingest).
        """
        if not fitted.fitted:
            raise NotFittedError("adopt_pipeline requires a fitted pipeline")
        with self._swap_lock:
            previous, self._pipeline = self._pipeline, fitted
        self.retrains += 1
        self.last_retrain_at = time.time()
        self.retrain_error = None
        self._last_retrain_sample = self._samples_seen
        if self.monitor is not None:
            self._monitor_reset_pending = True
        return previous

    def join_retrain(self, timeout: Optional[float] = None) -> bool:
        """Block until any in-flight retrain finishes; True when idle."""
        thread = self._retrain_thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    @property
    def retrain_in_flight(self) -> bool:
        """Whether a background refit is currently running."""
        thread = self._retrain_thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """JSON-serializable snapshot of the stream's health."""
        events = self.events
        drift: Optional[dict] = None
        if self.monitor is not None:
            drift = {
                "points": list(self.monitor.drift_points),
                "pending": self._drift_pending,
            }
        return {
            "closed": self._closed,
            "samples_seen": self._samples_seen,
            "batches": self._batches,
            "window": 0 if self._buffer is None else len(self._buffer),
            "window_size": self.window_size,
            "events_open": sum(1 for e in events if e.status == "open"),
            "events_closed": sum(1 for e in events if e.status == "closed"),
            "drift": drift,
            "retrains": self.retrains,
            "retrain_in_flight": self.retrain_in_flight,
            "last_retrain_at": self.last_retrain_at,
            "retrain_error": self.retrain_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StreamRunner(pipeline={self._pipeline.name!r}, "
                f"samples={self._samples_seen}, events={len(self._events)})")
