"""Built-in pipeline specifications (the AD Pipeline Hub, paper §3.2).

Each function returns a plain-dictionary template spec that
:class:`repro.core.pipeline.Pipeline` can execute. The hub covers the six
benchmark pipelines of the paper — LSTM DT, ARIMA, LSTM AE, Dense AE,
TadGAN, and the Azure (spectral residual) service pipeline — plus the
supervised LSTM classifier used by the feedback loop (Figure 2b).
"""

from __future__ import annotations

__all__ = [
    "lstm_dynamic_threshold",
    "arima",
    "lstm_autoencoder",
    "dense_autoencoder",
    "tadgan",
    "azure",
    "lstm_classifier",
    "mv_lstm_dynamic_threshold",
    "mv_dense_autoencoder",
]


def _common_preprocessing(interval=None):
    """The shared preprocessing prefix: aggregate, impute, scale."""
    return [
        {
            "primitive": "time_segments_aggregate",
            "hyperparameters": {"interval": interval, "method": "mean"},
        },
        {"primitive": "SimpleImputer"},
        {"primitive": "MinMaxScaler", "hyperparameters": {"feature_range": (-1.0, 1.0)}},
    ]


def lstm_dynamic_threshold(window_size: int = 100, epochs: int = 12,
                           interval=None) -> dict:
    """LSTM DT (Hundman et al. 2018): prediction + dynamic thresholding."""
    return {
        "name": "lstm_dynamic_threshold",
        "description": "LSTM forecaster with non-parametric dynamic thresholding.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "LSTMTimeSeriesRegressor",
                "hyperparameters": {"epochs": epochs},
            },
            {"primitive": "regression_errors"},
            {
                "primitive": "find_anomalies",
                "inputs": {"errors": "errors", "index": "target_index"},
            },
        ],
    }


def arima(window_size: int = 100, p: int = 5, d: int = 0, q: int = 1,
          interval=None) -> dict:
    """ARIMA statistical baseline with dynamic thresholding."""
    return {
        "name": "arima",
        "description": "ARIMA one-step-ahead forecaster with dynamic thresholding.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "ARIMA",
                "hyperparameters": {"p": p, "d": d, "q": q},
            },
            {"primitive": "regression_errors"},
            {
                "primitive": "find_anomalies",
                "inputs": {"errors": "errors", "index": "target_index"},
            },
        ],
    }


def lstm_autoencoder(window_size: int = 100, epochs: int = 12,
                     interval=None) -> dict:
    """LSTM AE (Malhotra et al. 2016): reconstruction-based detection."""
    return {
        "name": "lstm_autoencoder",
        "description": "LSTM encoder-decoder reconstruction pipeline.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "LSTMAutoencoder",
                "hyperparameters": {"epochs": epochs},
            },
            {
                "primitive": "reconstruction_errors",
                "inputs": {"y": "X", "y_hat": "y_hat", "index": "index"},
            },
            {"primitive": "find_anomalies"},
        ],
    }


def dense_autoencoder(window_size: int = 100, epochs: int = 20,
                      interval=None) -> dict:
    """Dense AE: fully-connected reconstruction pipeline."""
    return {
        "name": "dense_autoencoder",
        "description": "Dense autoencoder reconstruction pipeline.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "DenseAutoencoder",
                "hyperparameters": {"epochs": epochs},
            },
            {
                "primitive": "reconstruction_errors",
                "inputs": {"y": "X", "y_hat": "y_hat", "index": "index"},
            },
            {"primitive": "find_anomalies"},
        ],
    }


def tadgan(window_size: int = 100, epochs: int = 8, interval=None) -> dict:
    """TadGAN (Geiger et al. 2020): adversarial reconstruction pipeline."""
    return {
        "name": "tadgan",
        "description": "GAN-based reconstruction pipeline (TadGAN).",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "TadGAN",
                "hyperparameters": {"epochs": epochs},
            },
            {
                "primitive": "reconstruction_errors",
                "inputs": {"y": "X", "y_hat": "y_hat", "index": "index"},
            },
            {"primitive": "find_anomalies"},
        ],
    }


def azure(interval=None, k: float = 2.0) -> dict:
    """MS Azure service pipeline, emulated with the Spectral Residual scorer.

    The low fixed threshold reproduces the service's behaviour reported in
    the paper: it locates anomalies in every dataset but at the cost of many
    false positives (high recall, low precision).
    """
    return {
        "name": "azure",
        "description": "Spectral Residual (Azure anomaly detector) pipeline.",
        "steps": [
            {
                "primitive": "time_segments_aggregate",
                "hyperparameters": {"interval": interval, "method": "mean"},
            },
            {"primitive": "SimpleImputer"},
            {"primitive": "SpectralResidual"},
            {
                "primitive": "fixed_threshold",
                "hyperparameters": {"k": k},
            },
        ],
    }


def lstm_classifier(window_size: int = 50, epochs: int = 15,
                    interval=None) -> dict:
    """Supervised LSTM classifier pipeline (Figure 2b), used by the HIL loop.

    The pipeline expects an ``events`` context variable at fit time: a list
    of annotated anomalous ``(start, end)`` intervals used to derive labels.
    """
    return {
        "name": "lstm_classifier",
        "description": "Supervised LSTM classifier over trailing windows.",
        "steps": [
            {
                "primitive": "time_segments_aggregate",
                "hyperparameters": {"interval": interval, "method": "mean"},
            },
            {"primitive": "SimpleImputer"},
            {"primitive": "MinMaxScaler"},
            {
                "primitive": "cutoff_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {"primitive": "labels_from_events"},
            {
                "primitive": "LSTMTimeSeriesClassifier",
                "hyperparameters": {"epochs": epochs},
            },
            {"primitive": "probabilities_to_intervals"},
        ],
    }


def mv_lstm_dynamic_threshold(window_size: int = 100, epochs: int = 12,
                              interval=None) -> dict:
    """Multivariate LSTM DT: joint forecasting + channel attribution.

    The multivariate opening of the LSTM DT pipeline: rolling windows carry
    every channel, the forecaster predicts all channels' next values, the
    error step scores each channel and feeds the joint error to the dynamic
    threshold, and every emitted event names its dominant channel
    (``(start, end, severity, channel)``).
    """
    return {
        "name": "mv_lstm_dynamic_threshold",
        "description": "Multivariate LSTM forecaster with channel attribution.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size,
                                    "target_column": "all"},
            },
            {
                "primitive": "LSTMTimeSeriesRegressor",
                "hyperparameters": {"epochs": epochs},
            },
            {"primitive": "multichannel_regression_errors"},
            {
                "primitive": "find_anomalies",
                "inputs": {"errors": "errors", "index": "target_index"},
            },
            {
                "primitive": "channel_attribution",
                "inputs": {"anomalies": "anomalies",
                           "channel_errors": "channel_errors",
                           "index": "target_index"},
            },
        ],
    }


def mv_dense_autoencoder(window_size: int = 100, epochs: int = 20,
                         interval=None) -> dict:
    """Multivariate Dense AE: joint reconstruction + channel attribution."""
    return {
        "name": "mv_dense_autoencoder",
        "description": "Multivariate dense autoencoder with channel attribution.",
        "steps": _common_preprocessing(interval) + [
            {
                "primitive": "rolling_window_sequences",
                "hyperparameters": {"window_size": window_size},
            },
            {
                "primitive": "DenseAutoencoder",
                "hyperparameters": {"epochs": epochs},
            },
            {
                "primitive": "multichannel_reconstruction_errors",
                "inputs": {"y": "X", "y_hat": "y_hat", "index": "index"},
            },
            {"primitive": "find_anomalies"},
            {
                "primitive": "channel_attribution",
                "inputs": {"anomalies": "anomalies",
                           "channel_errors": "channel_errors",
                           "index": "index"},
            },
        ],
    }
