"""``repro.pipelines``: the AD pipeline hub."""

from repro.pipelines.hub import (
    BENCHMARK_PIPELINES,
    PIPELINE_REGISTRY,
    get_pipeline_spec,
    list_pipelines,
    load_pipeline,
    load_template,
    register_pipeline,
)

__all__ = [
    "PIPELINE_REGISTRY",
    "BENCHMARK_PIPELINES",
    "register_pipeline",
    "list_pipelines",
    "get_pipeline_spec",
    "load_template",
    "load_pipeline",
]
