"""The AD Pipeline Hub: registry of named pipeline templates."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.pipeline import Pipeline, Template
from repro.exceptions import PipelineError
from repro.pipelines import specs

__all__ = [
    "PIPELINE_REGISTRY",
    "register_pipeline",
    "list_pipelines",
    "get_pipeline_spec",
    "load_template",
    "load_pipeline",
    "BENCHMARK_PIPELINES",
]

#: Mapping from pipeline name to a spec factory (callable returning a dict).
PIPELINE_REGISTRY: Dict[str, Callable[..., dict]] = {
    "lstm_dynamic_threshold": specs.lstm_dynamic_threshold,
    "arima": specs.arima,
    "lstm_autoencoder": specs.lstm_autoencoder,
    "dense_autoencoder": specs.dense_autoencoder,
    "tadgan": specs.tadgan,
    "azure": specs.azure,
    "lstm_classifier": specs.lstm_classifier,
    "mv_lstm_dynamic_threshold": specs.mv_lstm_dynamic_threshold,
    "mv_dense_autoencoder": specs.mv_dense_autoencoder,
}

#: The unsupervised pipelines used by the paper's benchmark (Table 3).
BENCHMARK_PIPELINES = [
    "lstm_dynamic_threshold",
    "dense_autoencoder",
    "lstm_autoencoder",
    "tadgan",
    "arima",
    "azure",
]


def register_pipeline(name: str, factory: Callable[..., dict],
                      overwrite: bool = False) -> None:
    """Register a custom pipeline spec factory under ``name``."""
    if name in PIPELINE_REGISTRY and not overwrite:
        raise PipelineError(f"A pipeline named {name!r} is already registered")
    PIPELINE_REGISTRY[name] = factory


def list_pipelines() -> List[str]:
    """Return the sorted names of every registered pipeline."""
    return sorted(PIPELINE_REGISTRY)


def get_pipeline_spec(name: str, **options) -> dict:
    """Build the spec dictionary for a registered pipeline."""
    if name not in PIPELINE_REGISTRY:
        raise PipelineError(
            f"Unknown pipeline {name!r}. Available: {list_pipelines()}"
        )
    return PIPELINE_REGISTRY[name](**options)


def load_template(name: str, **options) -> Template:
    """Load a registered pipeline as an (untuned) :class:`Template`."""
    return Template(get_pipeline_spec(name, **options))


def load_pipeline(name: str, hyperparameters: Optional[dict] = None,
                  **options) -> Pipeline:
    """Load a registered pipeline as an executable :class:`Pipeline`."""
    return Pipeline(get_pipeline_spec(name, **options), hyperparameters=hyperparameters)
