"""Exception hierarchy shared across the ``repro`` package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "PipelineError",
    "PrimitiveError",
    "DatabaseError",
    "NotFoundError",
    "DuplicateKeyError",
    "TuningError",
    "BenchmarkError",
    "ExecutorError",
    "StreamError",
]


class ReproError(Exception):
    """Base class for all framework errors."""


class NotFittedError(ReproError):
    """Raised when ``detect``/``predict`` is called before ``fit``."""


class PipelineError(ReproError):
    """Raised for malformed pipelines (cycles, missing inputs, bad specs)."""


class PrimitiveError(ReproError):
    """Raised when a primitive fails validation or execution."""


class DatabaseError(ReproError):
    """Base class for knowledge-base errors."""


class NotFoundError(DatabaseError):
    """Raised when a requested document does not exist."""


class DuplicateKeyError(DatabaseError):
    """Raised when inserting a document that violates a unique constraint."""


class TuningError(ReproError):
    """Raised for hyperparameter-tuning failures."""


class BenchmarkError(ReproError):
    """Raised when a benchmark configuration is invalid."""


class ExecutorError(ReproError):
    """Raised for invalid executor configurations or execution plans."""


class StreamError(ReproError):
    """Raised for invalid streaming configurations or ingestion errors."""
