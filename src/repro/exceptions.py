"""Exception hierarchy shared across the ``repro`` package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "PipelineError",
    "PrimitiveError",
    "DatabaseError",
    "NotFoundError",
    "DuplicateKeyError",
    "TuningError",
    "BenchmarkError",
    "ExecutorError",
    "StreamError",
    "CapacityError",
    "ServiceUnavailableError",
    "AuthenticationError",
    "RateLimitedError",
]


class ReproError(Exception):
    """Base class for all framework errors."""


class NotFittedError(ReproError):
    """Raised when ``detect``/``predict`` is called before ``fit``."""


class PipelineError(ReproError):
    """Raised for malformed pipelines (cycles, missing inputs, bad specs)."""


class PrimitiveError(ReproError):
    """Raised when a primitive fails validation or execution."""


class DatabaseError(ReproError):
    """Base class for knowledge-base errors."""


class NotFoundError(DatabaseError):
    """Raised when a requested document does not exist."""


class DuplicateKeyError(DatabaseError):
    """Raised when inserting a document that violates a unique constraint."""


class TuningError(ReproError):
    """Raised for hyperparameter-tuning failures."""


class BenchmarkError(ReproError):
    """Raised when a benchmark configuration is invalid."""


class ExecutorError(ReproError):
    """Raised for invalid executor configurations or execution plans."""


class StreamError(ReproError):
    """Raised for invalid streaming configurations or ingestion errors."""


class CapacityError(ReproError):
    """Raised when a bounded resource (jobs, streams, admission queue) is
    full and the request should be retried later (HTTP 429)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ReproError):
    """Raised when a subsystem has been shut down and cannot accept new
    work (HTTP 503)."""


class AuthenticationError(ReproError):
    """Raised when a request carries no valid API key (HTTP 401)."""


class RateLimitedError(CapacityError):
    """Raised when a tenant exceeds its admitted request rate (HTTP 429)."""
