"""Streaming benchmark: latency, throughput and batch/stream parity.

``benchmark_streaming`` measures the streaming execution path against the
equivalent batch detection under identical conditions: for every
(pipeline, signal) combination it fits the pipeline once, runs a full
batch ``detect``, then replays the same signal through a
:class:`~repro.core.stream.StreamRunner` micro-batch by micro-batch,
recording per-batch latency percentiles, sustained sample throughput, and
whether the stream's final anomaly events match the batch intervals within
an edge tolerance. Stream sessions and their emitted anomalies can be
persisted through :mod:`repro.db` by passing an explorer.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sintel import Sintel
from repro.core.stream import StreamRunner
from repro.data.signal import Signal
from repro.data.synthetic import WorkloadGenerator
from repro.exceptions import BenchmarkError

__all__ = [
    "benchmark_fleet_streaming",
    "benchmark_streaming",
    "default_streaming_signals",
    "intervals_match",
]


def intervals_match(reference: Sequence[Tuple], candidate: Sequence[Tuple],
                    tolerance: float) -> bool:
    """Whether two interval lists agree within an edge tolerance.

    Every reference interval must be matched 1:1 by a candidate interval
    whose start and end each differ by at most ``tolerance`` timestamp
    units, and no candidate may remain unmatched.
    """
    reference = [tuple(map(float, interval[:2])) for interval in reference]
    candidate = [tuple(map(float, interval[:2])) for interval in candidate]
    if len(reference) != len(candidate):
        return False
    remaining = list(candidate)
    for start, end in reference:
        matched = None
        for i, (c_start, c_end) in enumerate(remaining):
            if abs(c_start - start) <= tolerance and abs(c_end - end) <= tolerance:
                matched = i
                break
        if matched is None:
            return False
        remaining.pop(matched)
    return True


def default_streaming_signals(length: int = 600, n_anomalies: int = 3,
                              random_state: int = 0) -> List[Signal]:
    """Three labeled signals from the deterministic workload generator.

    Each composes seasonality x trend x regime shifts with collective
    anomalies injected and ground-truth labels attached — the same
    :class:`~repro.data.synthetic.WorkloadGenerator` plane the quality CI
    leg scores against, sized for quick streaming sweeps. Identical seeds
    reproduce identical signals on every platform and start method.
    """
    generator = WorkloadGenerator(
        seed=random_state, n_channels=1, length=length,
        anomalies_per_signal=n_anomalies, taxonomy=("collective",),
    )
    return [generator.signal(index, name=f"stream-{index:02d}")
            for index in range(3)]


def run_stream_on_signal(pipeline_name: str, signal: Signal,
                         batch_size: int = 50,
                         window_size: Optional[int] = None,
                         warmup: int = 64,
                         tolerance: Optional[float] = None,
                         pipeline_options: Optional[dict] = None,
                         executor=None,
                         explorer=None) -> dict:
    """Stream one signal through one pipeline and compare against batch.

    Returns a record with per-batch latency statistics, throughput, the
    equivalent batch detect time, and a ``parity`` flag. The stream window
    defaults to the full signal length so the comparison measures pure
    incremental-execution overhead against an identical detection problem.
    """
    data = signal.to_array()
    if window_size is None:
        window_size = len(data)
    if tolerance is None:
        tolerance = float(batch_size)
    record = {
        "pipeline": pipeline_name,
        "signal": signal.name,
        "batch_size": batch_size,
        "window_size": window_size,
        "status": "ok",
    }
    try:
        sintel = Sintel(pipeline_name, executor=executor,
                        **(pipeline_options or {}))
        started = time.perf_counter()
        sintel.fit(data)
        record["fit_time"] = time.perf_counter() - started

        started = time.perf_counter()
        batch_anomalies = sintel.detect(data)
        record["batch_detect_time"] = time.perf_counter() - started

        db_id = None
        if explorer is not None:
            db_id = explorer.add_stream(pipeline_name, signal_id=signal.name,
                                        benchmark=True)
        on_event = None
        if db_id is not None:
            on_event = lambda event: explorer.add_stream_event(db_id, event)

        runner = StreamRunner(
            sintel.pipeline, window_size=window_size, warmup=warmup,
            drift_detector=None, retrain=False, on_event=on_event,
        )
        latencies = []
        for start in range(0, len(data), batch_size):
            chunk = data[start:start + batch_size]
            chunk_started = time.perf_counter()
            runner.send(chunk)
            latencies.append(time.perf_counter() - chunk_started)
        runner.close()
        stream_anomalies = runner.anomalies()
        if explorer is not None and db_id is not None:
            state = runner.state()
            explorer.end_stream(db_id, samples_seen=state["samples_seen"],
                                events=state["events_closed"])

        latencies = np.asarray(latencies)
        total = float(np.sum(latencies))
        record.update({
            "n_batches": len(latencies),
            "latency_mean": float(np.mean(latencies)),
            "latency_p95": float(np.percentile(latencies, 95)),
            "latency_max": float(np.max(latencies)),
            "stream_total_time": total,
            "throughput": len(data) / total if total > 0 else float("inf"),
            "n_batch_anomalies": len(batch_anomalies),
            "n_stream_events": len(stream_anomalies),
            "parity": intervals_match(batch_anomalies, stream_anomalies,
                                      tolerance),
        })
    except Exception as error:  # noqa: BLE001 - a failing pipeline is a result
        record.update({
            "status": "error",
            "error": str(error),
            "parity": False,
        })
    return record


def run_fleet_at_scale(pipeline_name: str, n_streams: int,
                       length: int = 400, batch_size: int = 50,
                       window_size: int = 200, warmup: int = 100,
                       exact: bool = False, precision=None,
                       coalesce: bool = True,
                       pipeline_options: Optional[dict] = None,
                       random_state: int = 0) -> dict:
    """Fleet vs. ``n_streams`` independent runners, same run, same data.

    Fits ``pipeline_name`` once, registers ``n_streams`` fleet lanes over
    the fitted pipeline, and builds one independent
    :class:`~repro.core.stream.StreamRunner` per stream over a deep copy
    of the same fitted state. Both planes then replay identical per-stream
    micro-batch schedules; the record carries wall-clock for each, the
    speedup ratio, the fleet's coalescing stats, and a parity flag —
    bitwise event equality on the exact plane, tolerance-banded
    ``(start, end, severity)`` agreement on the fused plane.
    """
    from repro.benchmark.batch import anomalies_within_tolerance
    from repro.core.fleet import FleetStreamRunner

    generator = WorkloadGenerator(
        seed=random_state, n_channels=1, length=length,
        anomalies_per_signal=2, taxonomy=("collective",),
    )
    train = generator.signal(0, name="fleet-train").to_array()
    replays = [generator.signal(10 + index).to_array()
               for index in range(n_streams)]

    record = {
        "pipeline": pipeline_name,
        "n_streams": n_streams,
        "batch_size": batch_size,
        "window_size": window_size,
        "exact": exact,
        "coalesce": coalesce,
        "status": "ok",
    }
    try:
        sintel = Sintel(pipeline_name, **(pipeline_options or {}))
        started = time.perf_counter()
        sintel.fit(train)
        record["fit_time"] = time.perf_counter() - started

        fleet = FleetStreamRunner(exact=exact, precision=precision,
                                  coalesce=coalesce,
                                  max_streams=max(n_streams, 1))
        lanes = [
            fleet.add_stream(sintel.pipeline, stream_id=f"bench-{index}",
                             window_size=window_size, warmup=warmup,
                             drift_detector=None)
            for index in range(n_streams)
        ]
        independents = [
            StreamRunner(copy.deepcopy(sintel.pipeline),
                         window_size=window_size, warmup=warmup,
                         drift_detector=None, retrain=False)
            for _ in range(n_streams)
        ]

        schedule = [
            [replay[start:start + batch_size]
             for start in range(0, len(replay), batch_size)]
            for replay in replays
        ]
        n_rounds = max(len(batches) for batches in schedule)

        started = time.perf_counter()
        for round_index in range(n_rounds):
            for runner, batches in zip(independents, schedule):
                if round_index < len(batches):
                    runner.send(batches[round_index])
        independent_time = time.perf_counter() - started

        started = time.perf_counter()
        for round_index in range(n_rounds):
            for lane, batches in zip(lanes, schedule):
                if round_index < len(batches):
                    fleet.ingest(lane.lane_id, batches[round_index])
            fleet.run_round()
        fleet_time = time.perf_counter() - started

        fleet_events = [lane.runner.anomalies() for lane in lanes]
        independent_events = [runner.anomalies()
                              for runner in independents]
        if exact:
            parity = fleet_events == independent_events
        else:
            parity = anomalies_within_tolerance(fleet_events,
                                                independent_events)
        stats = fleet.stats()
        fleet.close()
        for runner in independents:
            runner.close()

        record.update({
            "n_rounds": n_rounds,
            "independent_time": independent_time,
            "fleet_time": fleet_time,
            "speedup": (independent_time / fleet_time
                        if fleet_time > 0 else float("inf")),
            "coalesce_ratio": stats["coalesce_ratio"],
            "occupancy": stats["occupancy"],
            "plan_runs": stats["plan_runs"],
            "n_events": sum(len(events) for events in fleet_events),
            "parity": parity,
        })
    except Exception as error:  # noqa: BLE001 - a failing scale is a result
        record.update({
            "status": "error",
            "error": str(error),
            "parity": False,
        })
    return record


def benchmark_fleet_streaming(pipeline_name: str = "dense_autoencoder",
                              stream_counts: Sequence[int] = (1, 8, 32),
                              length: int = 400, batch_size: int = 50,
                              window_size: int = 200, warmup: int = 100,
                              exact: bool = False, precision=None,
                              coalesce: bool = True,
                              pipeline_options: Optional[dict] = None,
                              random_state: int = 0,
                              verbose: bool = False) -> dict:
    """Cross-stream micro-batch vectorization sweep over fleet sizes.

    For every count in ``stream_counts`` runs
    :func:`run_fleet_at_scale` — the fleet plane and the equivalent
    independent per-stream runners replay identical workloads in the same
    process, so the speedup ratio is same-run and machine-independent.

    Args:
        pipeline_name: pipeline to serve (default: the dense autoencoder,
            whose stateless NN forward dominates and so shows the
            cross-stream batching win; ``azure`` streams too fast for the
            batching to matter).
        stream_counts: fleet sizes to sweep.
        length / batch_size / window_size / warmup: per-stream workload
            shape (rows, micro-batch rows, stream window, warmup rows).
        exact: ``True`` pins the bitwise-identical exact plane (parity
            gate); ``False`` opts into the fused single-precision plane
            (throughput gate).
        precision: optional fused-plane precision override.
        coalesce: ``False`` disables cross-stream batching — the negative
            control; each lane then runs its own stream-batch plan.
        pipeline_options: spec-factory overrides for the pipeline.
        random_state: workload seed.
        verbose: print one line per fleet size.

    Returns:
        ``{"records": [...], "summary": {...}}`` with per-scale speedup
        and parity plus fleet-level aggregates.
    """
    if batch_size < 1:
        raise BenchmarkError("batch_size must be at least 1")
    if not stream_counts:
        raise BenchmarkError("stream_counts must not be empty")

    records = []
    for n_streams in stream_counts:
        record = run_fleet_at_scale(
            pipeline_name, int(n_streams), length=length,
            batch_size=batch_size, window_size=window_size, warmup=warmup,
            exact=exact, precision=precision, coalesce=coalesce,
            pipeline_options=pipeline_options, random_state=random_state,
        )
        records.append(record)
        if verbose:  # pragma: no cover - console output
            print(f"{pipeline_name:<18} streams={n_streams:<4} "
                  f"status={record['status']} "
                  f"speedup={record.get('speedup', 0):.2f}x "
                  f"parity={record.get('parity')}")

    ok = [record for record in records if record["status"] == "ok"]
    summary = {
        "pipeline": pipeline_name,
        "exact": exact,
        "coalesce": coalesce,
        "n_records": len(records),
        "n_ok": len(ok),
        "parity_rate": (sum(1 for r in ok if r["parity"]) / len(ok))
        if ok else 0.0,
    }
    if ok:
        largest = max(ok, key=lambda r: r["n_streams"])
        summary.update({
            "max_streams": largest["n_streams"],
            "speedup_at_max": largest["speedup"],
            "coalesce_ratio_at_max": largest["coalesce_ratio"],
        })
    return {"records": records, "summary": summary}


def benchmark_streaming(pipelines: Optional[Sequence[str]] = None,
                        signals: Optional[Sequence[Signal]] = None,
                        batch_size: int = 50,
                        window_size: Optional[int] = None,
                        warmup: int = 64,
                        tolerance: Optional[float] = None,
                        pipeline_options: Optional[Dict[str, dict]] = None,
                        executor=None,
                        explorer=None,
                        verbose: bool = False) -> dict:
    """Run the streaming vs. batch benchmark sweep.

    Args:
        pipelines: pipeline names (default: the spectral-residual service
            pipeline, the only benchmark pipeline fast enough to stream at
            interactive latency on a laptop).
        signals: signals to replay (default:
            :func:`default_streaming_signals`).
        batch_size: micro-batch size in rows.
        window_size: stream window (default: full signal, measuring pure
            incremental overhead at exact parity).
        warmup: rows buffered before the first detection.
        tolerance: parity edge tolerance in timestamp units (default:
            ``batch_size``).
        pipeline_options: per-pipeline spec-factory overrides.
        executor: executor for each pipeline's internal step scheduling.
        explorer: optional :class:`~repro.db.explorer.SintelExplorer`;
            sessions and emitted anomalies are persisted through it.
        verbose: print one line per (pipeline, signal).

    Returns:
        ``{"records": [...], "summary": {...}}`` where the summary holds
        fleet-level latency/throughput aggregates and the parity rate.
    """
    if batch_size < 1:
        raise BenchmarkError("batch_size must be at least 1")
    pipelines = list(pipelines) if pipelines else ["azure"]
    signals = list(signals) if signals is not None else default_streaming_signals()
    pipeline_options = pipeline_options or {}

    records = []
    for pipeline_name in pipelines:
        for signal in signals:
            record = run_stream_on_signal(
                pipeline_name, signal, batch_size=batch_size,
                window_size=window_size, warmup=warmup, tolerance=tolerance,
                pipeline_options=pipeline_options.get(pipeline_name),
                executor=executor, explorer=explorer,
            )
            records.append(record)
            if verbose:  # pragma: no cover - console output
                print(f"{pipeline_name:<10} {signal.name:<22} "
                      f"status={record['status']} "
                      f"parity={record.get('parity')} "
                      f"p95={record.get('latency_p95', 0) * 1000:.1f}ms")

    ok = [record for record in records if record["status"] == "ok"]
    summary = {
        "n_records": len(records),
        "n_ok": len(ok),
        "parity_rate": (sum(1 for r in ok if r["parity"]) / len(ok)) if ok else 0.0,
    }
    if ok:
        summary.update({
            "latency_mean": float(np.mean([r["latency_mean"] for r in ok])),
            "latency_p95": float(np.max([r["latency_p95"] for r in ok])),
            "throughput_mean": float(np.mean([r["throughput"] for r in ok])),
            "stream_vs_batch": float(np.mean([
                r["stream_total_time"] / r["batch_detect_time"]
                for r in ok if r["batch_detect_time"] > 0
            ])),
        })
    return {"records": records, "summary": summary}
