"""``python -m repro.benchmark`` — sharded benchmark runs from the shell.

Three subcommands cover the shard lifecycle end to end:

* ``run`` — execute one (optionally sharded) benchmark slice, writing
  per-job checkpoints so an interrupted invocation resumes;
* ``merge`` — combine the shard checkpoints into one ``BENCH_*.json``;
* ``check`` — compare a ``BENCH_*.json`` against a committed baseline and
  exit non-zero on regression (the CI gate).

Example — the CI ``bench-regression`` job::

    python -m repro.benchmark run --pipelines azure arima --max-signals 1 \\
        --scale 0.02 --shard-index 0 --shard-count 2 \\
        --checkpoint-dir bench-ci --executor process --workers 2 --no-memory
    python -m repro.benchmark run ... --shard-index 1 --shard-count 2 ...
    python -m repro.benchmark merge --checkpoint-dir bench-ci \\
        --output bench-ci/BENCH_ci.json
    python -m repro.benchmark check --current bench-ci/BENCH_ci.json \\
        --baseline benchmarks/output/BENCH_ci_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmark",
        description="Sharded, resumable benchmark runs and the CI "
                    "perf-regression gate.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run one (optionally sharded) benchmark slice")
    run.add_argument("--pipelines", nargs="+", default=None,
                     help="pipeline names (default: the paper's six)")
    run.add_argument("--datasets", nargs="+", default=None,
                     help="dataset names (default: all three synthetic sets)")
    run.add_argument("--method", default="overlapping",
                     choices=("overlapping", "weighted"))
    run.add_argument("--scale", type=float, default=0.02,
                     help="synthetic dataset scale (default: 0.02)")
    run.add_argument("--max-signals", type=int, default=None,
                     help="cap on signals per dataset")
    run.add_argument("--random-state", type=int, default=0)
    run.add_argument("--shard-index", type=int, default=None,
                     help="this invocation's shard (0-based)")
    run.add_argument("--shard-count", type=int, default=None,
                     help="total number of shards")
    run.add_argument("--checkpoint-dir", default=None,
                     help="directory for per-job JSONL checkpoints "
                          "(enables resume)")
    run.add_argument("--no-resume", action="store_true",
                     help="discard an existing checkpoint instead of "
                          "resuming from it")
    run.add_argument("--workers", type=int, default=1,
                     help="concurrent benchmark jobs (default: 1)")
    run.add_argument("--executor", default=None,
                     help="job fan-out executor name (serial, threaded, "
                          "process, caching, distributed)")
    run.add_argument("--queue-path", default=None,
                     help="distributed executor only: durable work-queue "
                          "file shared by the worker fleet (default: a "
                          "temporary queue discarded after the run)")
    run.add_argument("--pipeline-executor", default=None,
                     help="executor name for each pipeline's internal steps")
    run.add_argument("--no-memory", action="store_true",
                     help="skip tracemalloc memory profiling (faster)")
    run.add_argument("--verbose", action="store_true",
                     help="print one line per finished job")
    run.add_argument("--output", default=None,
                     help="also write this slice as a BENCH_*.json")
    run.add_argument("--explain-plan", action="store_true",
                     help="print each pipeline's compiled batch plan — "
                          "fusion chains and arena buffer sizes — instead "
                          "of benchmarking")

    merge = commands.add_parser(
        "merge", help="combine shard checkpoints into one BENCH_*.json")
    merge.add_argument("--checkpoint-dir", default=None,
                       help="directory holding the shard-*.jsonl files")
    merge.add_argument("--shards", nargs="+", default=None,
                       help="explicit shard checkpoint paths (alternative "
                            "to --checkpoint-dir)")
    merge.add_argument("--allow-partial", action="store_true",
                       help="merge even when some shards are missing")
    merge.add_argument("--dedupe", action="store_true",
                       help="keep the first record for a duplicated job "
                            "key instead of failing — required when "
                            "merging the fleet's worker-*.jsonl "
                            "checkpoints, where a crashed worker leaves "
                            "a duplicate for its redelivered unit")
    merge.add_argument("--tolerate-corrupt", action="store_true",
                       help="log and skip unparseable checkpoint lines "
                            "(crashed-worker files) instead of failing")
    merge.add_argument("--output", required=True,
                       help="path of the merged BENCH_*.json")

    check = commands.add_parser(
        "check",
        help="compare a BENCH_*.json against a baseline; prints a "
             "per-pipeline delta table and exits 1 on quality/coverage "
             "failures, 3 on timing-only regressions",
    )
    check.add_argument("--current", required=True,
                       help="freshly produced BENCH_*.json")
    check.add_argument("--baseline", required=True,
                       help="committed baseline BENCH_*.json")
    check.add_argument("--time-tolerance", type=float, default=0.2,
                       help="relative wall-time band per pipeline "
                            "(default: 0.2 = ±20%%)")
    check.add_argument("--quality-atol", type=float, default=0.0,
                       help="absolute tolerance on quality metrics "
                            "(default: 0.0 = exact)")
    check.add_argument("--report", default=None,
                       help="also write the comparison report as JSON")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    if args.explain_plan:
        return _command_explain(args)
    from repro.benchmark.runner import benchmark

    result = benchmark(
        pipelines=args.pipelines,
        datasets=args.datasets,
        method=args.method,
        scale=args.scale,
        max_signals=args.max_signals,
        random_state=args.random_state,
        profile_memory=not args.no_memory,
        verbose=args.verbose,
        workers=args.workers,
        executor=args.executor,
        pipeline_executor=args.pipeline_executor,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        checkpoint_dir=args.checkpoint_dir,
        resume=not args.no_resume,
        queue_path=args.queue_path,
    )
    shard = (f"shard {args.shard_index}/{args.shard_count}"
             if args.shard_count is not None else "full run")
    errors = sum(1 for r in result.records if r.get("status") != "ok")
    print(f"{shard}: {len(result)} jobs finished ({errors} errored)")
    if args.output:
        result.sort_canonical().to_json(args.output)
        print(f"wrote {args.output}")
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    from repro.benchmark.batch import explain_plan

    pipelines = args.pipelines
    if pipelines is None:
        from repro.pipelines import BENCHMARK_PIPELINES

        pipelines = list(BENCHMARK_PIPELINES)
    for index, name in enumerate(pipelines):
        if index:
            print()
        print(explain_plan(name))
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    from repro.benchmark.results import merge_shard_checkpoints

    if (args.checkpoint_dir is None) == (args.shards is None):
        print("merge: give exactly one of --checkpoint-dir or --shards",
              file=sys.stderr)
        return 2
    result = merge_shard_checkpoints(
        args.checkpoint_dir if args.checkpoint_dir is not None else args.shards,
        expect_complete=not args.allow_partial,
        dedupe=args.dedupe,
        on_corrupt="skip" if args.tolerate_corrupt else "raise",
    )
    result.to_json(args.output)
    print(f"merged {len(result)} records into {args.output}")
    return 0


#: ``check`` exit codes: quality/coverage failures (the benchmark's
#: *behaviour* changed) vs timing-only regressions (it merely got slower).
#: A report with both kinds exits with the quality code — correctness
#: dominates. The timing code deliberately avoids 2, which argparse uses
#: for usage errors — a consumer soft-failing on timing must never
#: mistake a broken invocation for a slowdown.
EXIT_QUALITY_FAILURE = 1
EXIT_TIMING_FAILURE = 3


def _command_check(args: argparse.Namespace) -> int:
    from repro.benchmark.regression import (
        compare_results,
        failure_kinds,
        format_delta_table,
        format_report,
    )
    from repro.benchmark.results import BenchmarkResult

    report = compare_results(
        BenchmarkResult.from_json(args.current),
        BenchmarkResult.from_json(args.baseline),
        time_tolerance=args.time_tolerance,
        quality_atol=args.quality_atol,
    )
    print(format_report(report))
    print()
    print(format_delta_table(report))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report}")
    kinds = failure_kinds(report)
    if "quality" in kinds:
        return EXIT_QUALITY_FAILURE
    if "timing" in kinds:
        return EXIT_TIMING_FAILURE
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "merge":
        return _command_merge(args)
    return _command_check(args)
