"""Batch-detection throughput benchmark: ``detect_batch`` vs the loop.

``benchmark_batch`` measures the batched data plane against the per-signal
baseline under identical conditions: for every pipeline it fits once, runs
``N`` signals through a plain ``detect`` loop, runs the same signals
through one :meth:`~repro.core.pipeline.Pipeline.detect_batch` pass, and
records wall times, throughput (signals per second), the speedup, and
parity with the loop — asserted on every run rather than assumed.

Parity comes in the two flavours of the batch plane itself:

* ``exact=True`` (default) — the batch result must be **bitwise equal**
  to the loop (the exact plane's guarantee);
* ``exact=False`` — the fused plane (single-precision concatenated NN
  forwards) must match within the documented tolerance
  (:data:`PARITY_RTOL` / :data:`PARITY_ATOL` on the anomaly tuples),
  checked by :func:`anomalies_within_tolerance`. The record additionally
  reports ``parity_max_dev``, the worst absolute deviation observed.

Timing uses best-of-``repeats`` for both paths, so scheduler noise on a
busy machine shrinks both numbers instead of skewing the ratio.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.sintel import Sintel
from repro.data.signal import Signal
from repro.data.synthetic import generate_signal
from repro.exceptions import BenchmarkError

__all__ = [
    "PARITY_RTOL",
    "PARITY_ATOL",
    "anomalies_within_tolerance",
    "benchmark_batch",
    "default_batch_signals",
    "explain_plan",
    "fusion_report",
    "run_batch_on_pipeline",
]

#: Relative tolerance of the fused (``exact=False``) batch plane, applied
#: to every anomaly tuple ``(start, end, severity)``. Single-precision
#: forwards deviate around 1e-7 relative on the raw network outputs; the
#: thresholding stages absorb most of it, so this band is generous for
#: timestamps yet still tight enough to catch a real behaviour change.
PARITY_RTOL = 1e-4
#: Absolute tolerance companion of :data:`PARITY_RTOL` (severities near 0).
PARITY_ATOL = 1e-6


def anomalies_within_tolerance(current: Sequence[List[tuple]],
                               reference: Sequence[List[tuple]],
                               rtol: float = PARITY_RTOL,
                               atol: float = PARITY_ATOL) -> bool:
    """Whether two per-signal anomaly batches match within tolerance.

    Requires the same number of signals and the same number of anomalies
    per signal; every ``(start, end, severity)`` tuple must satisfy
    ``allclose`` under ``rtol`` / ``atol``.
    """
    if len(current) != len(reference):
        return False
    for now, then in zip(current, reference):
        if len(now) != len(then):
            return False
        if not now:
            continue
        if not np.allclose(np.asarray(now, dtype=float),
                           np.asarray(then, dtype=float),
                           rtol=rtol, atol=atol):
            return False
    return True


def max_anomaly_deviation(current: Sequence[List[tuple]],
                          reference: Sequence[List[tuple]]) -> float:
    """Worst absolute deviation between two shape-matching anomaly batches.

    Returns ``inf`` when the batches disagree on counts (no aligned
    comparison exists).
    """
    if len(current) != len(reference):
        return float("inf")
    worst = 0.0
    for now, then in zip(current, reference):
        if len(now) != len(then):
            return float("inf")
        if not now:
            continue
        worst = max(worst, float(np.max(np.abs(
            np.asarray(now, dtype=float) - np.asarray(then, dtype=float)))))
    return worst


def default_batch_signals(n_signals: int = 8, length: int = 300,
                          n_anomalies: int = 2,
                          random_state: int = 0) -> List[Signal]:
    """``n_signals`` telemetry-flavoured signals sized for quick sweeps.

    Signals rotate through the three benchmark dataset flavours so the
    batch groups are realistic (identical lengths, different content).
    """
    flavours = ("periodic", "trend_seasonal", "traffic")
    return [
        generate_signal(
            f"batch-{i:02d}", length=length, n_anomalies=n_anomalies,
            random_state=random_state + i, flavour=flavours[i % len(flavours)],
        )
        for i in range(n_signals)
    ]


def fusion_report(pipeline) -> dict:
    """Per-chain fusion report for a pipeline's fused batch plan.

    Returns the chains the fusion pass formed (``groups``: name, member
    steps, categories, step count) and the state of the plan's arena
    (allocations, reuses, bytes held/reused, buffer shapes). Run a batch
    through the fused plane first — the arena is sized lazily from the
    batch shapes, so a freshly compiled plan reports an empty pool.
    """
    plan = pipeline.compiled_plan("batch", exact=False)
    groups = [dict(group, n_steps=len(group["steps"]))
              for group in plan.fusion_groups]
    arena = getattr(plan, "arena", None)
    return {
        "groups": groups,
        "n_chains": len(groups),
        "n_fused_steps": sum(group["n_steps"] for group in groups),
        "arena": arena.stats() if arena is not None else None,
    }


def explain_plan(pipeline_name: str,
                 pipeline_options: Optional[dict] = None,
                 signals: Optional[Sequence[Signal]] = None) -> str:
    """Render a pipeline's compiled batch plans with fusion and arena info.

    Fits the pipeline on a small synthetic signal (forcing ``epochs=1``
    when the spec factory accepts it — plan structure does not depend on
    training length), runs one fused batch so the arena is sized, and
    returns a human-readable description of both batch plans: every node
    in execution order, the fusion chains with their categories, and the
    arena's buffer shapes and byte counts.
    """
    import inspect

    from repro.pipelines import PIPELINE_REGISTRY

    options = dict(pipeline_options or {})
    factory = PIPELINE_REGISTRY.get(pipeline_name)
    if factory is not None and "epochs" not in options:
        if "epochs" in inspect.signature(factory).parameters:
            options["epochs"] = 1
    if signals is None:
        signals = default_batch_signals(n_signals=4, length=240)
    arrays = [signal.to_array() if isinstance(signal, Signal)
              else np.asarray(signal, dtype=float) for signal in signals]

    sintel = Sintel(pipeline_name, **options)
    sintel.fit(arrays[0])
    sintel.detect_many(arrays, exact=False)  # sizes the fused plan's arena
    pipeline = sintel.pipeline

    lines = [f"pipeline: {pipeline_name}"]
    for exact in (True, False):
        plan = pipeline.compiled_plan("batch", exact=exact)
        plane = "exact (bitwise)" if exact else "fused (tolerance)"
        lines.append(f"  batch plan [{plane}]: {len(plan.nodes)} node(s)")
        for node in plan.nodes:
            kind = "chain" if node.members else "step "
            lines.append(f"    {kind}  {node.name}")
    report = fusion_report(pipeline)
    lines.append(f"  fusion: {report['n_chains']} chain(s) covering "
                 f"{report['n_fused_steps']} step(s)")
    for group in report["groups"]:
        members = ", ".join(
            f"{step} ({category})"
            for step, category in zip(group["steps"], group["categories"]))
        lines.append(f"    {group['name']}: {members}")
    arena = report["arena"]
    if arena is not None:
        lines.append(
            f"  arena: {arena['allocations']} allocation(s), "
            f"{arena['reuses']} reuse(s), {arena['bytes_held']} bytes held, "
            f"{arena['bytes_reused']} bytes reused")
        for shape in arena["shapes"]:
            lines.append(f"    buffer {shape}")
    return "\n".join(lines)


def _best_of(action, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def run_batch_on_pipeline(pipeline_name: str, signals: Sequence[Signal],
                          repeats: int = 3,
                          pipeline_options: Optional[dict] = None,
                          executor=None, exact: bool = True) -> dict:
    """Measure one pipeline's loop vs batch detection over ``signals``."""
    record = {
        "pipeline": pipeline_name,
        "batch_size": len(signals),
        "exact": bool(exact),
        "status": "ok",
    }
    try:
        arrays = [signal.to_array() if isinstance(signal, Signal)
                  else np.asarray(signal, dtype=float) for signal in signals]
        sintel = Sintel(pipeline_name, executor=executor,
                        **(pipeline_options or {}))
        started = time.perf_counter()
        sintel.fit(arrays[0])
        record["fit_time"] = time.perf_counter() - started

        # Warm both paths once (plan compilation, lazy caches) so the
        # measured passes compare steady-state work.
        loop_result = [sintel.detect(array) for array in arrays]
        batch_result = sintel.detect_many(arrays, exact=exact)

        loop_time = _best_of(
            lambda: [sintel.detect(array) for array in arrays], repeats)
        batch_time = _best_of(
            lambda: sintel.detect_many(arrays, exact=exact), repeats)

        if exact:
            parity = batch_result == loop_result
        else:
            parity = anomalies_within_tolerance(batch_result, loop_result)
            record["parity_max_dev"] = max_anomaly_deviation(
                batch_result, loop_result)
            record["fusion"] = fusion_report(sintel.pipeline)
        record.update({
            "loop_time": loop_time,
            "batch_time": batch_time,
            "speedup": loop_time / batch_time if batch_time > 0 else float("inf"),
            "throughput_loop": len(arrays) / loop_time if loop_time > 0
            else float("inf"),
            "throughput_batch": len(arrays) / batch_time if batch_time > 0
            else float("inf"),
            "n_anomalies": sum(len(entry) for entry in batch_result),
            "parity": parity,
        })
    except Exception as error:  # noqa: BLE001 - a failing pipeline is a result
        record.update({"status": "error", "error": str(error), "parity": False})
    return record


def benchmark_batch(pipelines: Optional[Sequence[str]] = None,
                    signals: Optional[Sequence[Signal]] = None,
                    batch_size: int = 8,
                    repeats: int = 3,
                    pipeline_options: Optional[Dict[str, dict]] = None,
                    executor=None, exact: bool = True,
                    verbose: bool = False) -> dict:
    """Run the batch-vs-loop throughput sweep over the Fig. 7a pipelines.

    Args:
        pipelines: pipeline names (default: the paper's six benchmark
            pipelines).
        signals: signals forming the batch (default:
            :func:`default_batch_signals` of ``batch_size`` signals).
        batch_size: number of generated signals when ``signals`` is None.
        repeats: timing repetitions; both paths report their best run.
        pipeline_options: per-pipeline spec-factory overrides.
        executor: executor for each pipeline's internal step scheduling.
        exact: measure the bitwise-exact batch plane (``True``, default)
            or the fused single-precision plane (``False``) whose parity
            is tolerance-based.
        verbose: print one line per pipeline.

    Returns:
        ``{"records": [...], "summary": {...}}``. The summary's
        ``speedup_mean`` (arithmetic mean of per-pipeline speedups) and
        ``speedup_geomean`` are the headline batch-throughput numbers;
        ``aggregate_speedup`` is total loop time over total batch time
        (dominated by the slowest pipeline); ``parity_rate`` must be 1.0 —
        every batch result bitwise-equal (``exact=True``) or
        tolerance-equal (``exact=False``) to its per-signal loop.
    """
    if batch_size < 1:
        raise BenchmarkError("batch_size must be at least 1")
    if repeats < 1:
        raise BenchmarkError("repeats must be at least 1")
    if pipelines is None:
        from repro.pipelines import BENCHMARK_PIPELINES

        pipelines = list(BENCHMARK_PIPELINES)
    if signals is None:
        signals = default_batch_signals(n_signals=batch_size)
    pipeline_options = pipeline_options or {}

    records = []
    for pipeline_name in pipelines:
        record = run_batch_on_pipeline(
            pipeline_name, signals, repeats=repeats,
            pipeline_options=pipeline_options.get(pipeline_name),
            executor=executor, exact=exact,
        )
        records.append(record)
        if verbose:  # pragma: no cover - console output
            print(f"{pipeline_name:<24} status={record['status']} "
                  f"speedup={record.get('speedup', 0):.2f}x "
                  f"parity={record.get('parity')}")

    ok = [record for record in records if record["status"] == "ok"]
    summary = {
        "n_records": len(records),
        "n_ok": len(ok),
        "batch_size": len(signals),
        "exact": bool(exact),
        "parity_rate": (sum(1 for r in ok if r["parity"]) / len(ok)) if ok
        else 0.0,
    }
    if not exact:
        summary["parity_rtol"] = PARITY_RTOL
        summary["parity_atol"] = PARITY_ATOL
    if ok:
        speedups = np.asarray([record["speedup"] for record in ok])
        total_loop = float(np.sum([record["loop_time"] for record in ok]))
        total_batch = float(np.sum([record["batch_time"] for record in ok]))
        summary.update({
            "speedup_mean": float(np.mean(speedups)),
            "speedup_geomean": float(np.exp(np.mean(np.log(speedups)))),
            "speedup_best": float(np.max(speedups)),
            "aggregate_speedup": (total_loop / total_batch
                                  if total_batch > 0 else float("inf")),
            "throughput_batch_total": float(
                np.sum([record["throughput_batch"] for record in ok])),
        })
    return {"records": records, "summary": summary}
