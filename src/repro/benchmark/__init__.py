"""``repro.benchmark``: the standardized benchmarking framework (paper §3.4)."""

from repro.benchmark.api import (
    DEFAULT_ROUTES,
    benchmark_api,
    overload_proof,
    percentile,
)
from repro.benchmark.batch import (
    PARITY_ATOL,
    PARITY_RTOL,
    anomalies_within_tolerance,
    benchmark_batch,
    default_batch_signals,
    run_batch_on_pipeline,
)
from repro.benchmark.distributed import (
    DETERMINISTIC_FIELDS,
    benchmark_distributed,
    quality_view,
)
from repro.benchmark.comparison import (
    FEATURE_MATRIX,
    FEATURES,
    SYSTEMS,
    feature_coverage,
    format_table,
)
from repro.benchmark.profiling import (
    primitive_overhead,
    profile_overhead,
    profile_pipeline_steps,
    run_primitives_standalone,
)
from repro.benchmark.regression import (
    compare_results,
    failure_kinds,
    format_delta_table,
    format_report,
)
from repro.benchmark.results import BenchmarkResult, merge_shard_checkpoints
from repro.benchmark.runner import (
    DEFAULT_PIPELINE_OPTIONS,
    benchmark,
    run_pipeline_on_signal,
    shard_jobs,
)
from repro.benchmark.synthetic import (
    SYNTHETIC_MV_PIPELINE,
    SYNTHETIC_PIPELINES,
    benchmark_synthetic,
    default_mv_fleet,
    default_synthetic_fleet,
    format_synthetic,
    synthetic_gate,
)
from repro.benchmark.streaming import (
    benchmark_fleet_streaming,
    benchmark_streaming,
    default_streaming_signals,
    intervals_match,
    run_fleet_at_scale,
    run_stream_on_signal,
)

__all__ = [
    "benchmark",
    "run_pipeline_on_signal",
    "DEFAULT_PIPELINE_OPTIONS",
    "BenchmarkResult",
    "merge_shard_checkpoints",
    "shard_jobs",
    "compare_results",
    "failure_kinds",
    "format_delta_table",
    "format_report",
    "benchmark_batch",
    "default_batch_signals",
    "run_batch_on_pipeline",
    "anomalies_within_tolerance",
    "PARITY_RTOL",
    "PARITY_ATOL",
    "benchmark_distributed",
    "quality_view",
    "DETERMINISTIC_FIELDS",
    "benchmark_api",
    "overload_proof",
    "percentile",
    "DEFAULT_ROUTES",
    "benchmark_synthetic",
    "synthetic_gate",
    "format_synthetic",
    "default_synthetic_fleet",
    "default_mv_fleet",
    "SYNTHETIC_PIPELINES",
    "SYNTHETIC_MV_PIPELINE",
    "benchmark_streaming",
    "benchmark_fleet_streaming",
    "run_fleet_at_scale",
    "run_stream_on_signal",
    "default_streaming_signals",
    "intervals_match",
    "profile_pipeline_steps",
    "run_primitives_standalone",
    "primitive_overhead",
    "profile_overhead",
    "FEATURES",
    "SYSTEMS",
    "FEATURE_MATRIX",
    "feature_coverage",
    "format_table",
]
