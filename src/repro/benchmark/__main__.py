"""Module entry point: ``python -m repro.benchmark``."""

import sys

from repro.benchmark.cli import main

if __name__ == "__main__":
    sys.exit(main())
