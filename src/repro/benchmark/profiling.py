"""Primitive-level profiling (Figure 7b of the paper).

The paper measures the framework's overhead by comparing the time needed to
run each pipeline end-to-end against the total time of running its
primitives independently, outside the pipeline abstraction. The delta is
reported as an absolute number of seconds and an average percentage
increase per pipeline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.primitive import get_primitive, get_primitive_class
from repro.data.signal import Signal
from repro.pipelines import load_pipeline

__all__ = ["profile_pipeline_steps", "run_primitives_standalone",
           "primitive_overhead", "profile_overhead"]


def profile_pipeline_steps(pipeline: Pipeline, signal: Signal) -> Dict[str, dict]:
    """Run ``fit`` + ``detect`` and return the per-step timing breakdown."""
    data = signal.to_array()
    pipeline.fit(data, profile=True)
    fit_timings = dict(pipeline.step_timings)
    pipeline.detect(data, profile=True)
    detect_timings = dict(pipeline.step_timings)
    merged = {}
    for step in fit_timings:
        merged[step] = {
            "engine": fit_timings[step]["engine"],
            "fit_time": fit_timings[step]["elapsed"],
            "detect_time": detect_timings.get(step, {}).get("elapsed", 0.0),
            "memory": max(fit_timings[step]["memory"],
                          detect_timings.get(step, {}).get("memory", 0)),
        }
    return merged


def run_primitives_standalone(spec: dict, hyperparameters: Dict[str, dict],
                              signal: Signal, detect_pass: bool = True) -> float:
    """Execute a pipeline's primitives directly, outside the Pipeline class.

    The primitives are instantiated and called by hand with an explicit
    context dictionary — no spec parsing, no graph validation, no timing
    bookkeeping — which is the "external setting" of the paper's
    primitive-profiling experiment. To match the end-to-end pipeline, the
    primitives are fit and produced once (the training pass) and, when
    ``detect_pass`` is set, produced a second time (the detect pass).
    Returns the total elapsed seconds.
    """
    started = time.perf_counter()

    primitives = []
    for step in spec["steps"]:
        cls = get_primitive_class(step["primitive"])
        values = dict(hyperparameters.get(step["name"], {}))
        known = cls.get_default_hyperparameters()
        usable = {key: value for key, value in values.items() if key in known}
        primitives.append((step, get_primitive(step["primitive"], usable)))

    def run_pass(fit: bool) -> None:
        context = {"data": signal.to_array(), "events": None}
        for step, primitive in primitives:
            inputs = step.get("inputs", {})
            outputs = step.get("outputs", {})
            if fit and primitive.fit_args:
                primitive.fit(**{
                    arg: context[inputs.get(arg, arg)] for arg in primitive.fit_args
                })
            produced = primitive.produce(**{
                arg: context[inputs.get(arg, arg)] for arg in primitive.produce_args
            })
            for name, value in produced.items():
                context[outputs.get(name, name)] = value

    run_pass(fit=True)
    if detect_pass:
        run_pass(fit=False)
    return time.perf_counter() - started


def primitive_overhead(pipeline_name: str, signal: Signal,
                       pipeline_options: Optional[dict] = None) -> dict:
    """Compare end-to-end pipeline execution with standalone primitives.

    Returns a dictionary with ``pipeline_time``, ``standalone_time``,
    ``delta`` (seconds) and ``percent_increase``.
    """
    pipeline = load_pipeline(pipeline_name, **(pipeline_options or {}))

    started = time.perf_counter()
    pipeline.fit(signal.to_array())
    pipeline.detect(signal.to_array())
    pipeline_time = time.perf_counter() - started

    standalone_time = run_primitives_standalone(
        pipeline.spec, pipeline.get_hyperparameters(), signal
    )

    delta = pipeline_time - standalone_time
    percent = (delta / standalone_time * 100.0) if standalone_time > 0 else 0.0
    return {
        "pipeline": pipeline_name,
        "signal": signal.name,
        "pipeline_time": pipeline_time,
        "standalone_time": standalone_time,
        "delta": delta,
        "percent_increase": percent,
    }


def profile_overhead(pipeline_names: Sequence[str], signals: Sequence[Signal],
                     pipeline_options: Optional[Dict[str, dict]] = None
                     ) -> Dict[str, dict]:
    """Aggregate primitive overhead per pipeline over several signals.

    Returns ``{pipeline: {"delta_mean": s, "delta_std": s,
    "percent_increase": %, "runs": n}}`` — the Figure 7b summary.
    """
    pipeline_options = pipeline_options or {}
    results: Dict[str, List[dict]] = {name: [] for name in pipeline_names}
    for name in pipeline_names:
        for signal in signals:
            results[name].append(
                primitive_overhead(name, signal, pipeline_options.get(name))
            )

    summary = {}
    for name, rows in results.items():
        deltas = [row["delta"] for row in rows]
        percents = [row["percent_increase"] for row in rows]
        summary[name] = {
            "delta_mean": float(np.mean(deltas)),
            "delta_std": float(np.std(deltas)),
            "percent_increase": float(np.mean(percents)),
            "runs": len(rows),
        }
    return summary
