"""Distributed benchmark: fleet throughput scaling and serial parity (E10).

``benchmark_distributed`` runs the same deterministic benchmark job list
once serially (the trusted baseline) and once per requested worker count
through ``executor="distributed"`` — a durable work queue plus N
stateless ``python -m repro.worker`` processes — recording aggregate
throughput (jobs per second of wall time) against fleet size and gating
every fleet run on **bitwise quality parity** with the serial baseline:
the deterministic record fields (quality metrics, detection counts,
status) must be identical, job for job. Timing fields are measured
per-run and excluded from the comparison.

On a single-core host the fleet cannot beat serial wall time (the
workers multiplex one CPU and pay queue + subprocess overhead); the
benchmark is still meaningful there because parity, durability and the
scaling *trajectory* — not the absolute speedup — are what CI verifies.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchmark.runner import benchmark
from repro.exceptions import BenchmarkError

__all__ = [
    "benchmark_distributed",
    "quality_view",
    "DETERMINISTIC_FIELDS",
]

#: Record fields that must be bit-identical between a serial run and any
#: fleet run over the same jobs: everything except the per-run timings
#: (``fit_time`` / ``detect_time`` vary run to run) and ``memory``
#: (profiling is per-process).
DETERMINISTIC_FIELDS = (
    "dataset", "pipeline", "signal", "status",
    "f1", "precision", "recall", "n_detected", "n_truth",
)


def quality_view(records: Sequence[dict]) -> List[tuple]:
    """The deterministic projection of benchmark records, sorted.

    Two runs of the same job list — whatever the executor, worker count or
    completion order — must produce equal views; any difference means the
    distributed tier changed *what* was computed, not just how fast.
    """
    return sorted(
        tuple((field, record.get(field)) for field in DETERMINISTIC_FIELDS)
        for record in records
    )


def benchmark_distributed(
        worker_counts: Sequence[int] = (1, 2),
        pipelines: Optional[Sequence[str]] = None,
        datasets=None,
        scale: float = 0.02,
        max_signals: Optional[int] = None,
        pipeline_options: Optional[Dict[str, dict]] = None,
        random_state: int = 0,
        verbose: bool = False) -> dict:
    """Measure fleet throughput vs worker count, parity-gated on serial.

    Args:
        worker_counts: fleet sizes to measure (each spawns that many
            ``python -m repro.worker`` processes against a shared queue).
        pipelines / datasets / scale / max_signals / pipeline_options /
            random_state: forwarded to :func:`repro.benchmark.runner
            .benchmark`; defaults mirror the quality benchmark.
        verbose: print one line per measured configuration.

    Returns:
        ``{"records": [...], "summary": {...}}``. One record per
        configuration (``workers=0`` is the serial baseline) with
        ``wall_time``, ``n_jobs``, ``throughput`` (jobs/s) and ``parity``
        (quality view identical to the serial baseline). The summary
        carries the baseline wall time, the per-fleet-size speedups, and
        ``parity_all``.
    """
    worker_counts = list(worker_counts)
    if not worker_counts or any(count < 1 for count in worker_counts):
        raise BenchmarkError("worker_counts must be positive integers")

    common = dict(
        pipelines=pipelines, datasets=datasets, scale=scale,
        max_signals=max_signals, pipeline_options=pipeline_options,
        random_state=random_state, profile_memory=False,
    )

    def run(executor, workers) -> Tuple[dict, list]:
        started = time.perf_counter()
        if executor is None:
            result = benchmark(**common)
        else:
            result = benchmark(executor=executor, workers=workers, **common)
        wall = time.perf_counter() - started
        n_jobs = len(result.records)
        record = {
            "executor": executor or "serial",
            "workers": workers,
            "wall_time": wall,
            "n_jobs": n_jobs,
            "throughput": n_jobs / wall if wall > 0 else float("inf"),
        }
        return record, quality_view(result.records)

    records: List[dict] = []
    baseline, baseline_view = run(None, 0)
    baseline["parity"] = True
    records.append(baseline)
    if verbose:  # pragma: no cover - console output
        print(f"serial baseline: {baseline['n_jobs']} jobs in "
              f"{baseline['wall_time']:.2f}s")

    for count in worker_counts:
        record, view = run("distributed", count)
        record["parity"] = view == baseline_view
        record["speedup"] = (baseline["wall_time"] / record["wall_time"]
                             if record["wall_time"] > 0 else float("inf"))
        records.append(record)
        if verbose:  # pragma: no cover - console output
            print(f"workers={count}: {record['wall_time']:.2f}s "
                  f"({record['throughput']:.2f} jobs/s, "
                  f"speedup {record['speedup']:.2f}x, "
                  f"parity={record['parity']})")

    fleet = records[1:]
    summary = {
        "n_jobs": baseline["n_jobs"],
        "serial_wall_time": baseline["wall_time"],
        "serial_throughput": baseline["throughput"],
        "worker_counts": worker_counts,
        "speedups": {str(record["workers"]): record["speedup"]
                     for record in fleet},
        "throughputs": {str(record["workers"]): record["throughput"]
                        for record in fleet},
        "parity_all": all(record["parity"] for record in fleet),
    }
    return {"records": records, "summary": summary}
