"""The benchmarking framework (paper §3.4).

``benchmark`` runs every requested pipeline over every signal of every
requested dataset under identical conditions, recording both *quality*
(contextual precision / recall / F1 against the known anomalies) and
*computational performance* (training time, detect latency, peak memory).

Large runs are divisible and interruptible:

* **Sharding** — the deterministic (dataset, pipeline, signal) job list can
  be split across independent invocations with ``shard_index`` /
  ``shard_count`` (round-robin by position), so several CI runners or
  cluster nodes each take a disjoint slice;
* **Checkpointing** — with a ``checkpoint_dir``, every finished job is
  appended to the shard's JSONL checkpoint the moment it completes, and a
  re-run resumes from the checkpoint instead of recomputing finished jobs;
* **Merging** — :func:`repro.benchmark.results.merge_shard_checkpoints`
  combines the shard files back into one canonical ``BENCH_*.json``.

The ``python -m repro.benchmark`` CLI drives all three from the shell.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional, Sequence, Union

from repro.core.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    get_executor,
    trace_memory,
)
from repro.core.sintel import Sintel
from repro.data.datasets import load_benchmark_datasets
from repro.data.signal import Dataset, Signal
from repro.evaluation import overlapping_segment_scores, weighted_segment_scores
from repro.exceptions import BenchmarkError
from repro.benchmark.results import BenchmarkResult
from repro.pipelines import BENCHMARK_PIPELINES, list_pipelines

__all__ = [
    "benchmark",
    "run_pipeline_on_signal",
    "DEFAULT_PIPELINE_OPTIONS",
    "CHECKPOINT_VERSION",
    "shard_jobs",
]

#: Schema version of the shard checkpoint files.
CHECKPOINT_VERSION = 1

#: Fault-injection hook for the CI regression gate's self-test: when this
#: environment variable holds a float, every benchmark job sleeps that many
#: seconds and reports the delay in its ``fit_time`` — a synthetic
#: regression the ``bench-regression`` workflow proves it can catch.
INJECT_SLEEP_ENV = "REPRO_BENCH_INJECT_SLEEP"

#: Scaled-down pipeline options so the full benchmark runs on a laptop.
DEFAULT_PIPELINE_OPTIONS: Dict[str, dict] = {
    "lstm_dynamic_threshold": {"window_size": 50, "epochs": 5},
    "lstm_autoencoder": {"window_size": 50, "epochs": 5},
    "dense_autoencoder": {"window_size": 50, "epochs": 10},
    "tadgan": {"window_size": 50, "epochs": 3},
    "arima": {"window_size": 50},
    "azure": {},
}


def run_pipeline_on_signal(pipeline_name: str, signal: Signal,
                           pipeline_options: Optional[dict] = None,
                           method: str = "overlapping",
                           profile_memory: bool = True,
                           executor=None) -> dict:
    """Fit and detect one pipeline on one signal and score the result.

    Returns a benchmark record dictionary (see
    :class:`repro.benchmark.results.BenchmarkResult`).

    Memory profiling is nested-safe: when an outer ``tracemalloc`` trace is
    already active (e.g. several benchmark jobs sharing a process) the peak
    is measured as a delta against the current snapshot and the outer trace
    is left running.
    """
    options = dict(DEFAULT_PIPELINE_OPTIONS.get(pipeline_name, {}))
    options.update(pipeline_options or {})
    record = {
        "pipeline": pipeline_name,
        "dataset": signal.metadata.get("dataset", "unknown"),
        "signal": signal.name,
        "status": "ok",
    }
    data = signal.to_array()

    try:
        sintel = Sintel(pipeline_name, executor=executor, **options)

        with trace_memory(profile_memory) as probe:
            started = time.perf_counter()
            sintel.fit(data)
            record["fit_time"] = time.perf_counter() - started

            started = time.perf_counter()
            detected = sintel.detect(data)
            record["detect_time"] = time.perf_counter() - started
        record["memory"] = probe.memory if profile_memory else 0

        if method == "weighted":
            data_range = (float(data[0, 0]), float(data[-1, 0]))
            scores = weighted_segment_scores(signal.anomalies, detected, data_range)
        else:
            scores = overlapping_segment_scores(signal.anomalies, detected)
        record.update({
            "f1": scores["f1"],
            "precision": scores["precision"],
            "recall": scores["recall"],
            "n_detected": len(detected),
            "n_truth": len(signal.anomalies),
        })
    except Exception as error:  # noqa: BLE001 - a failing pipeline is a result
        record.update({
            "status": "error",
            "error": str(error),
            "fit_time": 0.0,
            "detect_time": 0.0,
            "memory": 0,
            "f1": 0.0,
            "precision": 0.0,
            "recall": 0.0,
        })
    return record


def _execute_benchmark_job(job: dict) -> dict:
    """Run one benchmark job described by a plain-data dictionary.

    Module-level and pickle-friendly on purpose: this is the function the
    benchmark fans out through ``Executor.map``, and the process backend
    ships it (and the job dict) to pool workers. The signal's arrays sit at
    the top level of the dict so the process executor can move them through
    shared memory.
    """
    signal = Signal(
        name=job["signal_name"],
        timestamps=job["timestamps"],
        values=job["values"],
        anomalies=job["anomalies"],
        metadata=job["metadata"],
    )
    record = run_pipeline_on_signal(
        job["pipeline"], signal,
        pipeline_options=job["pipeline_options"],
        method=job["method"],
        profile_memory=job["profile_memory"],
        executor=job["pipeline_executor"],
    )
    record["dataset"] = job["dataset"]

    delay = os.environ.get(INJECT_SLEEP_ENV)
    if delay:  # pragma: no cover - exercised by the CI gate self-test
        delay = float(delay)
        time.sleep(delay)
        record["fit_time"] += delay

    if job["verbose"]:  # pragma: no cover - console output
        # Printed on completion so long sweeps show live progress (lines
        # may arrive out of submission order with concurrent executors).
        print(
            f"{job['pipeline']:<24} {job['dataset']:<8} {job['signal_name']:<28} "
            f"f1={record['f1']:.3f} fit={record['fit_time']:.1f}s "
            f"status={record['status']}"
        )
    return record


def job_key(dataset: str, pipeline: str, signal: str) -> str:
    """Stable identity of one benchmark job inside a run."""
    return f"{dataset}::{pipeline}::{signal}"


def shard_jobs(n_jobs: int, shard_index: int, shard_count: int) -> list:
    """Round-robin positions of ``shard_index`` out of ``shard_count``.

    Every job position lands in exactly one shard, so the union over all
    shard indices is the full run and any two shards are disjoint.
    """
    if shard_count < 1:
        raise BenchmarkError("shard_count must be at least 1")
    if not 0 <= shard_index < shard_count:
        raise BenchmarkError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return [position for position in range(n_jobs)
            if position % shard_count == shard_index]


# --------------------------------------------------------------------------- #
# shard checkpoints
# --------------------------------------------------------------------------- #
def _checkpoint_path(checkpoint_dir: str, shard_index: int,
                     shard_count: int) -> str:
    return os.path.join(
        checkpoint_dir, f"shard-{shard_index:03d}-of-{shard_count:03d}.jsonl"
    )


def _checkpoint_header(method: str, shard_index: int, shard_count: int,
                       pipelines: Sequence[str], dataset_names: Sequence[str],
                       scale: float, random_state: int,
                       max_signals: Optional[int], n_jobs: int) -> dict:
    # Everything that determines the shard's job list and the data each job
    # runs on is pinned here: a resume whose configuration differs in any
    # of these would silently mix records computed on different data, so
    # ``_load_checkpoint`` rejects it. ``n_jobs`` additionally lets the
    # merge step verify each shard finished (records == jobs announced).
    return {
        "kind": "header",
        "version": CHECKPOINT_VERSION,
        "method": method,
        "shard_index": shard_index,
        "shard_count": shard_count,
        "pipelines": list(pipelines),
        "datasets": sorted(dataset_names),
        "scale": scale,
        "random_state": random_state,
        "max_signals": max_signals,
        "n_jobs": n_jobs,
    }


def _load_checkpoint(path: str, header: dict) -> Dict[str, dict]:
    """Read finished job records from a shard checkpoint file.

    Returns ``{job_key: record}``. A torn trailing line (the run was killed
    mid-append) is dropped — that job is simply recomputed. The stored
    header must match the current run configuration — resuming a checkpoint
    written by a different method, shard layout or pipeline selection would
    silently mix incompatible records, so it raises instead.
    """
    from repro.benchmark.results import read_checkpoint_lines

    completed: Dict[str, dict] = {}
    for entry in read_checkpoint_lines(path):
        if entry.get("kind") == "header":
            stored = {key: entry.get(key) for key in header if key != "kind"}
            expected = {key: value for key, value in header.items()
                        if key != "kind"}
            if stored != expected:
                raise BenchmarkError(
                    f"Checkpoint {path} was written by a different run "
                    f"configuration ({stored} != {expected}); pass "
                    "resume=False (or delete the file) to start over"
                )
        elif entry.get("kind") == "record":
            completed[entry["key"]] = entry["record"]
    return completed


def benchmark(pipelines: Optional[Sequence[str]] = None,
              datasets: Optional[Union[Dict[str, Dataset], Sequence[str]]] = None,
              method: str = "overlapping",
              scale: float = 0.02,
              max_signals: Optional[int] = None,
              pipeline_options: Optional[Dict[str, dict]] = None,
              random_state: int = 0,
              profile_memory: bool = True,
              verbose: bool = False,
              workers: int = 1,
              executor=None,
              pipeline_executor=None,
              shard_index: Optional[int] = None,
              shard_count: Optional[int] = None,
              checkpoint_dir: Optional[str] = None,
              resume: bool = True,
              queue_path: Optional[str] = None) -> BenchmarkResult:
    """Run the full quality + computational benchmark (Table 3 / Figure 7a).

    Args:
        pipelines: pipeline names (defaults to the paper's six benchmark
            pipelines).
        datasets: mapping of name -> :class:`Dataset`, a list of dataset
            names, or ``None`` for all three synthetic datasets.
        method: contextual scoring method (``"overlapping"`` as in Table 3,
            or ``"weighted"``).
        scale: dataset scale when datasets are built by name.
        max_signals: optional cap on signals per dataset (keeps runs short).
        pipeline_options: per-pipeline spec-factory overrides.
        random_state: seed for dataset construction.
        profile_memory: record peak memory with ``tracemalloc``. With
            concurrent workers the trace is shared across jobs, so per-job
            peaks become upper-bound estimates.
        verbose: print one line per (pipeline, signal).
        workers: number of concurrent (pipeline, signal) jobs. ``1`` keeps
            the original serial behaviour; ``N > 1`` fans jobs out over a
            :class:`~repro.core.executor.ThreadedExecutor` (or whichever
            executor ``executor`` names).
        executor: executor name, class or instance for the job fan-out.
            ``"process"`` schedules jobs across a multiprocessing pool of
            ``workers`` processes — the fastest option for the CPU-bound
            Figure 7 sweep. ``"distributed"`` enqueues the jobs into a
            durable work queue and spawns ``workers`` stateless worker
            processes (``python -m repro.worker``) against it — slower to
            start than ``"process"`` but crash-survivable: a killed
            worker costs one lease timeout, and a re-run against the same
            ``queue_path`` resumes from the finished jobs.
        pipeline_executor: optional executor forwarded to each pipeline for
            its internal step scheduling. With ``executor="process"`` this
            must be a registry *name* (it crosses the process boundary).
        shard_index / shard_count: run only a deterministic round-robin
            slice of the job list. Both must be given together; distinct
            indices partition the run, so N invocations with
            ``shard_count=N`` cover every job exactly once.
        checkpoint_dir: directory for per-shard JSONL checkpoints. Every
            finished job is appended (and flushed) as it completes, so an
            interrupted run loses at most the jobs still in flight.
        resume: when a checkpoint for this shard exists, skip its finished
            jobs and only run the remainder (default). ``False`` discards
            the existing checkpoint and recomputes the whole shard.
        queue_path: ``executor="distributed"`` only — path of the durable
            work-queue file the worker fleet shares. ``None`` uses a
            temporary queue discarded after the run; an explicit path
            makes the fan-out itself resumable and lets externally
            started workers (other hosts sharing the filesystem) join.

    Returns:
        A :class:`BenchmarkResult` with one record per (pipeline, signal)
        of this shard (resumed records included), in deterministic
        (dataset, pipeline, signal) submission order regardless of worker
        count.
    """
    if method not in ("overlapping", "weighted"):
        raise BenchmarkError(f"Unknown evaluation method {method!r}")
    if workers < 1:
        raise BenchmarkError("workers must be at least 1")
    if (shard_index is None) != (shard_count is None):
        raise BenchmarkError(
            "shard_index and shard_count must be provided together"
        )

    pipelines = list(pipelines) if pipelines else list(BENCHMARK_PIPELINES)
    unknown = set(pipelines) - set(list_pipelines())
    if unknown:
        raise BenchmarkError(f"Unknown pipelines requested: {sorted(unknown)}")

    if datasets is None or (isinstance(datasets, (list, tuple))
                            and all(isinstance(d, str) for d in datasets)):
        names = list(datasets) if datasets else None
        datasets = load_benchmark_datasets(scale=scale, random_state=random_state,
                                           names=names)
    elif not isinstance(datasets, dict):
        raise BenchmarkError(
            "datasets must be None, a list of names, or a {name: Dataset} mapping"
        )

    pipeline_options = pipeline_options or {}
    result = BenchmarkResult(method=method)

    # Deterministic job list: dataset -> pipeline -> signal, exactly the
    # order the serial loops used. ``Executor.map`` preserves item order,
    # so the records come back identically ordered for any worker count —
    # and sharding slices this same list, so shard membership is stable
    # across invocations.
    jobs = []
    for dataset_name, dataset in datasets.items():
        signals = list(dataset)
        if max_signals is not None:
            signals = signals[:max_signals]
        for pipeline_name in pipelines:
            for signal in signals:
                jobs.append({
                    "key": job_key(dataset_name, pipeline_name, signal.name),
                    "dataset": dataset_name,
                    "pipeline": pipeline_name,
                    "signal_name": signal.name,
                    "timestamps": signal.timestamps,
                    "values": signal.values,
                    "anomalies": signal.anomalies,
                    "metadata": signal.metadata,
                    "pipeline_options": pipeline_options.get(pipeline_name),
                    "method": method,
                    "profile_memory": profile_memory,
                    "pipeline_executor": pipeline_executor,
                    "verbose": verbose,
                })

    if shard_count is not None:
        jobs = [jobs[position]
                for position in shard_jobs(len(jobs), shard_index, shard_count)]

    # Resume: load this shard's checkpoint and drop finished jobs.
    completed: Dict[str, dict] = {}
    checkpoint_file = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        path = _checkpoint_path(checkpoint_dir, shard_index or 0,
                                shard_count or 1)
        header = _checkpoint_header(
            method, shard_index or 0, shard_count or 1, pipelines,
            dataset_names=list(datasets), scale=scale,
            random_state=random_state, max_signals=max_signals,
            n_jobs=len(jobs),
        )
        if resume and os.path.exists(path):
            completed = _load_checkpoint(path, header)
        # Rewrite from the parsed state (repairing any torn trailing line
        # from an interrupted run), atomically: the old checkpoint stays
        # intact until the replacement is fully on disk, then new records
        # are appended to the replacement.
        staging = path + ".tmp"
        with open(staging, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            for key, record in completed.items():
                handle.write(
                    json.dumps({"kind": "record", "key": key,
                                "record": record}, default=float) + "\n")
        os.replace(staging, path)
        checkpoint_file = open(path, "a")

    pending = [job for job in jobs if job["key"] not in completed]

    if executor is not None:
        if isinstance(executor, str) and executor == "distributed":
            # The fleet executor always honours the worker count (one
            # worker is still a durable, crash-survivable subprocess) and
            # shares the benchmark's checkpoint directory so workers
            # leave worker-*.jsonl audit trails beside the shard files.
            job_executor = get_executor(
                executor, max_workers=workers, queue_path=queue_path,
                checkpoint_dir=checkpoint_dir)
        elif isinstance(executor, str) and workers > 1 \
                and executor in (ThreadedExecutor.name, ProcessExecutor.name):
            job_executor = get_executor(executor, max_workers=workers)
        else:
            job_executor = get_executor(executor)
    elif workers > 1:
        job_executor = ThreadedExecutor(max_workers=workers)
    else:
        job_executor = get_executor(None)

    def checkpoint(index: int, record: dict) -> None:
        if checkpoint_file is None:
            return
        entry = {"kind": "record", "key": pending[index]["key"],
                 "record": record}
        checkpoint_file.write(json.dumps(entry, default=float) + "\n")
        checkpoint_file.flush()

    # With a concurrent in-process job executor, hold one tracemalloc trace
    # across the whole fan-out: individual jobs then measure snapshot deltas
    # instead of racing to stop a trace their siblings are still reading.
    # Process and distributed workers own their traces (jobs run in other
    # processes), so the parent holds nothing.
    hold_trace = profile_memory \
        and not isinstance(job_executor, (SerialExecutor, ProcessExecutor)) \
        and getattr(job_executor, "name", "") != "distributed"
    try:
        with trace_memory(hold_trace):
            records = job_executor.map(_execute_benchmark_job, pending,
                                       progress=checkpoint)
    finally:
        if checkpoint_file is not None:
            checkpoint_file.close()

    fresh = {job["key"]: record for job, record in zip(pending, records)}
    for job in jobs:
        result.add(fresh.get(job["key"]) or completed[job["key"]])
    return result
