"""The benchmarking framework (paper §3.4).

``benchmark`` runs every requested pipeline over every signal of every
requested dataset under identical conditions, recording both *quality*
(contextual precision / recall / F1 against the known anomalies) and
*computational performance* (training time, detect latency, peak memory).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Union

from repro.core.executor import (
    SerialExecutor,
    ThreadedExecutor,
    get_executor,
    trace_memory,
)
from repro.core.sintel import Sintel
from repro.data.datasets import load_benchmark_datasets
from repro.data.signal import Dataset, Signal
from repro.evaluation import overlapping_segment_scores, weighted_segment_scores
from repro.exceptions import BenchmarkError
from repro.benchmark.results import BenchmarkResult
from repro.pipelines import BENCHMARK_PIPELINES, list_pipelines

__all__ = ["benchmark", "run_pipeline_on_signal", "DEFAULT_PIPELINE_OPTIONS"]

#: Scaled-down pipeline options so the full benchmark runs on a laptop.
DEFAULT_PIPELINE_OPTIONS: Dict[str, dict] = {
    "lstm_dynamic_threshold": {"window_size": 50, "epochs": 5},
    "lstm_autoencoder": {"window_size": 50, "epochs": 5},
    "dense_autoencoder": {"window_size": 50, "epochs": 10},
    "tadgan": {"window_size": 50, "epochs": 3},
    "arima": {"window_size": 50},
    "azure": {},
}


def run_pipeline_on_signal(pipeline_name: str, signal: Signal,
                           pipeline_options: Optional[dict] = None,
                           method: str = "overlapping",
                           profile_memory: bool = True,
                           executor=None) -> dict:
    """Fit and detect one pipeline on one signal and score the result.

    Returns a benchmark record dictionary (see
    :class:`repro.benchmark.results.BenchmarkResult`).

    Memory profiling is nested-safe: when an outer ``tracemalloc`` trace is
    already active (e.g. several benchmark jobs sharing a process) the peak
    is measured as a delta against the current snapshot and the outer trace
    is left running.
    """
    options = dict(DEFAULT_PIPELINE_OPTIONS.get(pipeline_name, {}))
    options.update(pipeline_options or {})
    record = {
        "pipeline": pipeline_name,
        "dataset": signal.metadata.get("dataset", "unknown"),
        "signal": signal.name,
        "status": "ok",
    }
    data = signal.to_array()

    try:
        sintel = Sintel(pipeline_name, executor=executor, **options)

        with trace_memory(profile_memory) as probe:
            started = time.perf_counter()
            sintel.fit(data)
            record["fit_time"] = time.perf_counter() - started

            started = time.perf_counter()
            detected = sintel.detect(data)
            record["detect_time"] = time.perf_counter() - started
        record["memory"] = probe.memory if profile_memory else 0

        if method == "weighted":
            data_range = (float(data[0, 0]), float(data[-1, 0]))
            scores = weighted_segment_scores(signal.anomalies, detected, data_range)
        else:
            scores = overlapping_segment_scores(signal.anomalies, detected)
        record.update({
            "f1": scores["f1"],
            "precision": scores["precision"],
            "recall": scores["recall"],
            "n_detected": len(detected),
            "n_truth": len(signal.anomalies),
        })
    except Exception as error:  # noqa: BLE001 - a failing pipeline is a result
        record.update({
            "status": "error",
            "error": str(error),
            "fit_time": 0.0,
            "detect_time": 0.0,
            "memory": 0,
            "f1": 0.0,
            "precision": 0.0,
            "recall": 0.0,
        })
    return record


def benchmark(pipelines: Optional[Sequence[str]] = None,
              datasets: Optional[Union[Dict[str, Dataset], Sequence[str]]] = None,
              method: str = "overlapping",
              scale: float = 0.02,
              max_signals: Optional[int] = None,
              pipeline_options: Optional[Dict[str, dict]] = None,
              random_state: int = 0,
              profile_memory: bool = True,
              verbose: bool = False,
              workers: int = 1,
              executor=None,
              pipeline_executor=None) -> BenchmarkResult:
    """Run the full quality + computational benchmark (Table 3 / Figure 7a).

    Args:
        pipelines: pipeline names (defaults to the paper's six benchmark
            pipelines).
        datasets: mapping of name -> :class:`Dataset`, a list of dataset
            names, or ``None`` for all three synthetic datasets.
        method: contextual scoring method (``"overlapping"`` as in Table 3,
            or ``"weighted"``).
        scale: dataset scale when datasets are built by name.
        max_signals: optional cap on signals per dataset (keeps runs short).
        pipeline_options: per-pipeline spec-factory overrides.
        random_state: seed for dataset construction.
        profile_memory: record peak memory with ``tracemalloc``. With
            concurrent workers the trace is shared across jobs, so per-job
            peaks become upper-bound estimates.
        verbose: print one line per (pipeline, signal).
        workers: number of concurrent (pipeline, signal) jobs. ``1`` keeps
            the original serial behaviour; ``N > 1`` fans jobs out over a
            :class:`~repro.core.executor.ThreadedExecutor`.
        executor: explicit :class:`~repro.core.executor.Executor` for the
            job fan-out (overrides ``workers``).
        pipeline_executor: optional executor forwarded to each pipeline for
            its internal step scheduling.

    Returns:
        A :class:`BenchmarkResult` with one record per (pipeline, signal),
        in deterministic (dataset, pipeline, signal) submission order
        regardless of worker count.
    """
    if method not in ("overlapping", "weighted"):
        raise BenchmarkError(f"Unknown evaluation method {method!r}")
    if workers < 1:
        raise BenchmarkError("workers must be at least 1")

    pipelines = list(pipelines) if pipelines else list(BENCHMARK_PIPELINES)
    unknown = set(pipelines) - set(list_pipelines())
    if unknown:
        raise BenchmarkError(f"Unknown pipelines requested: {sorted(unknown)}")

    if datasets is None or (isinstance(datasets, (list, tuple))
                            and all(isinstance(d, str) for d in datasets)):
        names = list(datasets) if datasets else None
        datasets = load_benchmark_datasets(scale=scale, random_state=random_state,
                                           names=names)
    elif not isinstance(datasets, dict):
        raise BenchmarkError(
            "datasets must be None, a list of names, or a {name: Dataset} mapping"
        )

    pipeline_options = pipeline_options or {}
    result = BenchmarkResult(method=method)

    # Deterministic job list: dataset -> pipeline -> signal, exactly the
    # order the serial loops used. ``Executor.map`` preserves item order,
    # so the records come back identically ordered for any worker count.
    jobs = []
    for dataset_name, dataset in datasets.items():
        signals = list(dataset)
        if max_signals is not None:
            signals = signals[:max_signals]
        for pipeline_name in pipelines:
            for signal in signals:
                jobs.append((dataset_name, pipeline_name, signal))

    if executor is not None:
        job_executor = get_executor(executor)
    elif workers > 1:
        job_executor = ThreadedExecutor(max_workers=workers)
    else:
        job_executor = get_executor(None)

    def run_job(job):
        dataset_name, pipeline_name, signal = job
        record = run_pipeline_on_signal(
            pipeline_name, signal,
            pipeline_options=pipeline_options.get(pipeline_name),
            method=method,
            profile_memory=profile_memory,
            executor=pipeline_executor,
        )
        record["dataset"] = dataset_name
        if verbose:  # pragma: no cover - console output
            # Printed on completion so long sweeps show live progress
            # (lines may arrive out of submission order with workers > 1).
            print(
                f"{pipeline_name:<24} {dataset_name:<8} {signal.name:<28} "
                f"f1={record['f1']:.3f} fit={record['fit_time']:.1f}s "
                f"status={record['status']}"
            )
        return record

    # With a concurrent job executor, hold one tracemalloc trace across the
    # whole fan-out: individual jobs then measure snapshot deltas instead of
    # racing to stop a trace their siblings are still reading.
    hold_trace = profile_memory and not isinstance(job_executor, SerialExecutor)
    with trace_memory(hold_trace):
        records = job_executor.map(run_job, jobs)

    for record in records:
        result.add(record)
    return result
