"""Gateway benchmark: closed-loop multi-tenant load with an overload proof.

``benchmark_api`` drives the production :class:`repro.api.Gateway` with N
concurrent closed-loop tenant clients (each thread issues its next request
only after the previous one returns) over cheap read routes, in two
phases:

* **baseline** — every tenant runs with a generous token bucket; the
  per-tenant latency percentiles and error rates recorded here are the
  reference band.
* **overload** — one additional "hog" tenant fires ``hog_factor``× its
  admitted budget as fast as it can while the quiet tenants repeat their
  baseline traffic.

The claim CI verifies is the *no-noisy-neighbour* property: under
overload the hog is shed (429s from its token bucket and the admission
queue) while the quiet tenants' goodput, error rate and p95 stay inside
the baseline band. ``overload_proof`` evaluates that claim and — when
``disable_gating=True`` — re-runs with the hog's bucket and the admission
gate opened wide, which must make the proof FAIL; the CI leg uses that as
a negative control proving the check has teeth.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

from repro.api.gateway import Gateway
from repro.api.rest import SintelAPI
from repro.api.tenants import TenantRegistry
from repro.db import SintelExplorer
from repro.exceptions import BenchmarkError

__all__ = [
    "benchmark_api",
    "overload_proof",
    "percentile",
    "DEFAULT_ROUTES",
]

#: Cheap read routes exercised by the closed-loop clients.
DEFAULT_ROUTES = ("/v1/pipelines", "/v1/events", "/v1/datasets")

#: p95 band for the overload proof: quiet-tenant p95 under overload must
#: stay below ``max(baseline_p95 * P95_TOLERANCE, P95_FLOOR_MS)``. The
#: absolute floor keeps the check meaningful when the baseline is
#: sub-millisecond (where a 10x ratio is measurement noise).
P95_TOLERANCE = 10.0
P95_FLOOR_MS = 50.0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of ``values``."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]


def _seed_knowledge_base(api: SintelAPI, n_events: int = 20) -> None:
    """Populate the explorer so list routes return non-trivial pages."""
    from repro.data import generate_signal

    explorer = api.explorer
    dataset_id = explorer.add_dataset("bench")
    signal = generate_signal("bench-1", length=60, n_anomalies=1,
                             random_state=0)
    signal_id = explorer.add_signal(dataset_id, signal)
    for index in range(n_events):
        explorer.add_event(signal_id=signal_id, signalrun_id="run-bench",
                           start_time=index, stop_time=index + 1,
                           source="machine")


def _run_client(gateway: Gateway, key: str, routes: Sequence[str],
                n_requests: int, latencies: List[float],
                statuses: List[int]) -> None:
    """Closed-loop client: next request only after the previous returns."""
    for index in range(n_requests):
        route = routes[index % len(routes)]
        started = time.perf_counter()
        response = gateway.get(route, headers={"X-API-Key": key})
        latencies.append((time.perf_counter() - started) * 1000.0)
        statuses.append(response.status)


def _tenant_record(phase: str, name: str, latencies: List[float],
                   statuses: List[int], wall: float) -> dict:
    n = len(statuses)
    ok = sum(1 for status in statuses if status < 400)
    rate_limited = statuses.count(429)
    errors = n - ok - rate_limited
    return {
        "phase": phase,
        "tenant": name,
        "requests": n,
        "ok": ok,
        "rate_limited": rate_limited,
        "errors": errors,
        "error_rate": errors / n if n else 0.0,
        "goodput": ok / wall if wall > 0 else float("inf"),
        "p50_ms": percentile(latencies, 0.50),
        "p95_ms": percentile(latencies, 0.95),
        "p99_ms": percentile(latencies, 0.99),
    }


def _run_phase(gateway: Gateway, phase: str,
               clients: Dict[str, dict]) -> List[dict]:
    """Run every client concurrently; one record per tenant."""
    results = {name: ([], []) for name in clients}
    threads = []
    for name, spec in clients.items():
        latencies, statuses = results[name]
        threads.append(threading.Thread(
            target=_run_client,
            args=(gateway, spec["key"], spec["routes"], spec["n_requests"],
                  latencies, statuses),
            name=f"bench-api-{phase}-{name}"))
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return [
        _tenant_record(phase, name, results[name][0], results[name][1], wall)
        for name in sorted(clients)
    ]


def benchmark_api(
        n_tenants: int = 3,
        requests_per_client: int = 60,
        hog_factor: int = 4,
        hog_rate: float = 25.0,
        hog_burst: float = 10.0,
        routes: Sequence[str] = DEFAULT_ROUTES,
        max_concurrent: int = 8,
        max_queue: int = 16,
        gating: bool = True,
        verbose: bool = False) -> dict:
    """Closed-loop gateway load test with a tenant-isolation overload phase.

    Args:
        n_tenants: quiet tenants running closed-loop in both phases.
        requests_per_client: requests each quiet client issues per phase.
        hog_factor: the hog fires ``hog_factor * hog_burst`` requests
            back-to-back in the overload phase — several times its
            admitted budget.
        hog_rate / hog_burst: the hog's token bucket (ignored when
            ``gating=False``, which gives it an unlimited bucket).
        routes: route mix cycled by every client.
        max_concurrent / max_queue: admission-control sizing (widened to
            effectively-unbounded when ``gating=False``).
        gating: when False, disables both per-tenant rate limiting for the
            hog and admission shedding — the negative-control mode used by
            ``overload_proof`` to show the protection is load-bearing.
        verbose: print one line per phase.

    Returns:
        ``{"records": [...], "summary": {...}}`` — one record per
        (phase, tenant) with goodput, error rate and latency percentiles;
        the summary carries the quiet-tenant aggregate band for both
        phases plus the overload-proof inputs (``shed_engaged``,
        ``p95_within_band``, ...).
    """
    if n_tenants < 1 or requests_per_client < 1 or hog_factor < 1:
        raise BenchmarkError(
            "n_tenants, requests_per_client and hog_factor must be >= 1")

    registry = TenantRegistry()
    gateway = Gateway(
        SintelAPI(SintelExplorer()), tenants=registry,
        max_concurrent=max_concurrent if gating else 10_000,
        max_queue=max_queue, queue_timeout=0.25)
    try:
        _seed_knowledge_base(gateway.api)

        quiet = {}
        for index in range(n_tenants):
            _, key = registry.create(f"tenant-{index}", rate=100_000.0,
                                     burst=100_000.0)
            quiet[f"tenant-{index}"] = {
                "key": key, "routes": list(routes),
                "n_requests": requests_per_client,
            }
        _, hog_key = registry.create(
            "hog", rate=None if not gating else hog_rate,
            burst=None if not gating else hog_burst)

        baseline = _run_phase(gateway, "baseline", quiet)
        if verbose:  # pragma: no cover - console output
            for record in baseline:
                print(f"baseline {record['tenant']}: "
                      f"p95={record['p95_ms']:.2f}ms "
                      f"goodput={record['goodput']:.0f} req/s")

        hog_requests = int(hog_factor * hog_burst)
        overload_clients = dict(quiet)
        overload_clients["hog"] = {
            "key": hog_key, "routes": list(routes),
            "n_requests": hog_requests,
        }
        overload = _run_phase(gateway, "overload", overload_clients)
        if verbose:  # pragma: no cover - console output
            for record in overload:
                print(f"overload {record['tenant']}: "
                      f"p95={record['p95_ms']:.2f}ms 429s="
                      f"{record['rate_limited']}/{record['requests']}")

        admission = gateway.admission.stats()
    finally:
        gateway.close()

    records = baseline + overload

    def quiet_band(phase_records):
        quiet_only = [record for record in phase_records
                      if record["tenant"] != "hog"]
        return {
            "p95_ms": max(record["p95_ms"] for record in quiet_only),
            "error_rate": max(record["error_rate"]
                              for record in quiet_only),
            "rate_limited": sum(record["rate_limited"]
                                for record in quiet_only),
            "goodput": sum(record["goodput"] for record in quiet_only),
        }

    baseline_band = quiet_band(baseline)
    overload_band = quiet_band(overload)
    hog_record = next(record for record in overload
                      if record["tenant"] == "hog")
    p95_ceiling = max(baseline_band["p95_ms"] * P95_TOLERANCE, P95_FLOOR_MS)

    summary = {
        "gating": gating,
        "n_tenants": n_tenants,
        "requests_per_client": requests_per_client,
        "hog_requests": hog_record["requests"],
        "hog_rate_limited": hog_record["rate_limited"],
        "shed_engaged": hog_record["rate_limited"] > 0,
        "baseline_quiet_p95_ms": baseline_band["p95_ms"],
        "overload_quiet_p95_ms": overload_band["p95_ms"],
        "p95_ceiling_ms": p95_ceiling,
        "p95_within_band": overload_band["p95_ms"] <= p95_ceiling,
        "baseline_quiet_error_rate": baseline_band["error_rate"],
        "overload_quiet_error_rate": overload_band["error_rate"],
        "quiet_rate_limited_overload": overload_band["rate_limited"],
        "baseline_quiet_goodput": baseline_band["goodput"],
        "overload_quiet_goodput": overload_band["goodput"],
        "admission": admission,
    }
    return {"records": records, "summary": summary}


def overload_proof(disable_gating: bool = False, **kwargs) -> dict:
    """Evaluate the no-noisy-neighbour claim; the CI gate.

    The proof holds iff, under overload, (a) the hog was shed — its 429
    count is positive, (b) the quiet tenants saw no rate limiting and no
    new errors, and (c) quiet p95 stayed inside the baseline band. With
    ``disable_gating=True`` the hog gets an unlimited bucket and the
    admission gate is opened wide, so (a) must fail — the negative
    control CI runs to prove the gate is actually doing the protecting.
    """
    outcome = benchmark_api(gating=not disable_gating, **kwargs)
    summary = outcome["summary"]
    checks = {
        "shed_engaged": summary["shed_engaged"],
        "quiet_unlimited": summary["quiet_rate_limited_overload"] == 0,
        "quiet_no_new_errors": (summary["overload_quiet_error_rate"]
                                <= summary["baseline_quiet_error_rate"]),
        "p95_within_band": summary["p95_within_band"],
    }
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "summary": summary,
        "records": outcome["records"],
    }
