"""Benchmark result containers, table formatting, and shard merging."""

from __future__ import annotations

import csv
import glob
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = ["BenchmarkResult", "merge_shard_checkpoints", "read_checkpoint_lines"]

LOGGER = logging.getLogger(__name__)


def read_checkpoint_lines(path, on_corrupt: str = "raise") -> List[dict]:
    """Parse a JSONL checkpoint file, tolerating a torn final line.

    A process killed mid-append (SIGKILL, OOM, full disk) leaves a partial
    trailing line; that line is dropped, so its job is simply recomputed on
    resume. What a corrupt line anywhere *else* means depends on who wrote
    the file, so ``on_corrupt`` selects the policy:

    * ``"raise"`` (the default) — a single-writer shard checkpoint cannot
      tear a middle line, so the file is damaged and parsing raises rather
      than silently losing records;
    * ``"skip"`` — worker-written fleet checkpoints *can* carry mid-file
      tears (a worker SIGKILL'd mid-append whose file is never appended to
      again still merges alongside its siblings' complete files) and empty
      files (a worker killed before its first record). Unparseable lines
      are logged and dropped; a missing file is logged and treated as
      empty.
    """
    if on_corrupt not in ("raise", "skip"):
        raise ValueError(
            f"on_corrupt must be 'raise' or 'skip', got {on_corrupt!r}")
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        if on_corrupt == "skip":
            LOGGER.warning("Checkpoint file %s is missing; treating it as "
                           "empty", path)
            return []
        raise
    entries: List[dict] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            if on_corrupt == "skip":
                LOGGER.warning("Skipping corrupt checkpoint line %d in %s",
                               index + 1, path)
                continue
            raise ValueError(
                f"Corrupt checkpoint line {index + 1} in {path}; the file "
                "is damaged beyond a torn trailing write"
            )
    return entries


@dataclass
class BenchmarkResult:
    """Raw per-signal benchmark records plus aggregation helpers.

    Every record is a dictionary with at least ``pipeline``, ``dataset``,
    ``signal``, the quality metrics (``f1``, ``precision``, ``recall``), the
    computational metrics (``fit_time``, ``detect_time``, ``memory``), and a
    ``status`` field (``"ok"`` or ``"error"``).
    """

    records: List[dict] = field(default_factory=list)
    method: str = "overlapping"

    def add(self, record: dict) -> None:
        """Append a record."""
        self.records.append(dict(record))

    # ------------------------------------------------------------------ #
    @property
    def pipelines(self) -> List[str]:
        """Pipelines present in the records."""
        return sorted({record["pipeline"] for record in self.records})

    @property
    def datasets(self) -> List[str]:
        """Datasets present in the records."""
        return sorted({record["dataset"] for record in self.records})

    def ok_records(self, pipeline: Optional[str] = None,
                   dataset: Optional[str] = None) -> List[dict]:
        """Successful records, optionally filtered."""
        selected = [record for record in self.records if record.get("status") == "ok"]
        if pipeline is not None:
            selected = [r for r in selected if r["pipeline"] == pipeline]
        if dataset is not None:
            selected = [r for r in selected if r["dataset"] == dataset]
        return selected

    # ------------------------------------------------------------------ #
    def quality_table(self, metrics=("f1", "precision", "recall")) -> Dict[str, dict]:
        """Aggregate quality metrics per pipeline per dataset (Table 3).

        Returns ``{pipeline: {dataset: {metric: (mean, std)}}}``.
        """
        table: Dict[str, dict] = {}
        for pipeline in self.pipelines:
            table[pipeline] = {}
            for dataset in self.datasets:
                rows = self.ok_records(pipeline, dataset)
                if not rows:
                    continue
                table[pipeline][dataset] = {
                    metric: (
                        float(np.mean([row[metric] for row in rows])),
                        float(np.std([row[metric] for row in rows])),
                    )
                    for metric in metrics
                }
        return table

    def computational_table(self) -> Dict[str, dict]:
        """Aggregate computational metrics per pipeline (Figure 7a).

        Returns ``{pipeline: {"fit_time": s, "detect_time": s, "memory": MB}}``
        summed over every benchmarked signal, mirroring the paper's totals.
        """
        table = {}
        for pipeline in self.pipelines:
            rows = self.ok_records(pipeline)
            if not rows:
                continue
            table[pipeline] = {
                "fit_time": float(np.sum([row["fit_time"] for row in rows])),
                "detect_time": float(np.sum([row["detect_time"] for row in rows])),
                "memory_mb": float(np.max([row.get("memory", 0) for row in rows]) / 1e6),
                "signals": len(rows),
            }
        return table

    # ------------------------------------------------------------------ #
    def format_quality(self) -> str:
        """Render the Table 3 layout as aligned text."""
        table = self.quality_table()
        lines = []
        header = f"{'pipeline':<24}" + "".join(
            f"{dataset + ' ' + metric:>18}"
            for dataset in self.datasets
            for metric in ("f1", "precision", "recall")
        )
        lines.append(header)
        lines.append("-" * len(header))
        for pipeline in self.pipelines:
            cells = [f"{pipeline:<24}"]
            for dataset in self.datasets:
                metrics = table.get(pipeline, {}).get(dataset)
                for metric in ("f1", "precision", "recall"):
                    if metrics is None:
                        cells.append(f"{'-':>18}")
                    else:
                        mean, std = metrics[metric]
                        cells.append(f"{mean:>10.3f} ±{std:>5.2f}")
            lines.append("".join(cells))
        return "\n".join(lines)

    def format_computational(self) -> str:
        """Render the Figure 7a aggregates as aligned text."""
        table = self.computational_table()
        lines = [f"{'pipeline':<24}{'train time (s)':>16}{'latency (s)':>14}"
                 f"{'memory (MB)':>14}{'signals':>10}"]
        lines.append("-" * len(lines[0]))
        for pipeline, row in sorted(table.items()):
            lines.append(
                f"{pipeline:<24}{row['fit_time']:>16.2f}{row['detect_time']:>14.2f}"
                f"{row['memory_mb']:>14.2f}{row['signals']:>10}"
            )
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Dump the raw records to a CSV file."""
        if not self.records:
            raise ValueError("There are no records to write")
        fieldnames = sorted({key for record in self.records for key in record})
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(self.records)

    # ------------------------------------------------------------------ #
    def sort_canonical(self) -> "BenchmarkResult":
        """Sort records by (dataset, pipeline, signal), in place.

        This is the canonical ``BENCH_*.json`` order: independent of shard
        layout, worker count, and dataset insertion order, so merged shard
        outputs and single-run outputs compare byte-for-byte on identity.
        """
        self.records.sort(
            key=lambda r: (r.get("dataset", ""), r.get("pipeline", ""),
                           r.get("signal", ""))
        )
        return self

    def to_json(self, path) -> None:
        """Write the result as a ``BENCH_*.json`` document."""
        payload = {"method": self.method, "records": self.records}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=float)
            handle.write("\n")

    @classmethod
    def from_json(cls, path) -> "BenchmarkResult":
        """Load a result written by :meth:`to_json`."""
        with open(path) as handle:
            payload = json.load(handle)
        return cls(records=list(payload.get("records", [])),
                   method=payload.get("method", "overlapping"))

    def __len__(self) -> int:
        return len(self.records)


# --------------------------------------------------------------------------- #
# shard merging
# --------------------------------------------------------------------------- #
def merge_shard_checkpoints(
        source: Union[str, Sequence[str]],
        expect_complete: bool = True,
        dedupe: bool = False,
        on_corrupt: str = "raise") -> BenchmarkResult:
    """Combine per-shard checkpoint files into one canonical result.

    Args:
        source: a checkpoint directory (every ``shard-*.jsonl`` inside is
            merged) or an explicit sequence of checkpoint file paths.
        expect_complete: verify that the shard files form one full run —
            consistent headers, every shard index from ``0`` to
            ``shard_count - 1`` present exactly once. Disable to merge a
            partial collection (e.g. to inspect an in-flight run).
        dedupe: how to treat a job key appearing more than once. Shards
            partition a run, so across ``shard-*.jsonl`` files a duplicate
            is a layout error and raises (the default). The distributed
            fleet's ``worker-*.jsonl`` checkpoints legitimately overlap —
            a worker that crashed after appending its record but before
            acknowledging the queue leaves a duplicate for the redelivered
            unit — so fleet merges pass ``dedupe=True``: the **first**
            record read wins and later ones are dropped (both executions
            computed the same job; only nondeterministic timings differ).
        on_corrupt: line-damage policy forwarded to
            :func:`read_checkpoint_lines` — ``"raise"`` for single-writer
            shard files, ``"skip"`` to tolerate the truncated/empty files
            a crashed fleet worker leaves behind.

    Returns:
        A :class:`BenchmarkResult` with the union of every shard's records
        in canonical (dataset, pipeline, signal) order.

    Raises:
        ValueError: on inconsistent headers, duplicate job keys across
            shards (unless ``dedupe``), or (with ``expect_complete``)
            missing shards.
    """
    if isinstance(source, (str, os.PathLike)):
        paths = sorted(glob.glob(os.path.join(str(source), "shard-*.jsonl")))
        if not paths:
            raise ValueError(f"No shard-*.jsonl checkpoints found in {source!r}")
    else:
        paths = list(source)
        if not paths:
            raise ValueError("No checkpoint files given")

    headers: List[dict] = []
    records: Dict[str, dict] = {}
    counts_by_path: Dict[str, int] = {}
    for path in paths:
        counts_by_path[path] = 0
        for entry in read_checkpoint_lines(path, on_corrupt=on_corrupt):
            if entry.get("kind") == "header":
                headers.append({**entry, "path": path})
            elif entry.get("kind") == "record":
                if entry["key"] in records:
                    if dedupe:
                        continue
                    raise ValueError(
                        f"Job {entry['key']!r} appears in more than one "
                        "shard checkpoint; the shards do not partition "
                        "one run"
                    )
                records[entry["key"]] = entry["record"]
                counts_by_path[path] += 1

    methods = {header.get("method") for header in headers}
    if len(methods) > 1:
        raise ValueError(
            f"Checkpoints mix evaluation methods {sorted(methods, key=str)}"
        )
    if expect_complete:
        if not headers:
            raise ValueError("No checkpoint headers found; nothing to verify")
        counts = {header.get("shard_count") for header in headers}
        if len(counts) != 1:
            raise ValueError(
                "Checkpoints disagree on shard_count: "
                f"{sorted(counts, key=str)}"
            )
        if not isinstance(next(iter(counts)), int):
            raise ValueError(
                f"Checkpoint headers carry no usable shard_count in {paths}"
            )
        expected = set(range(counts.pop()))
        seen = [header.get("shard_index") for header in headers]
        if sorted(seen, key=str) != sorted(expected, key=str):
            raise ValueError(
                f"Expected shards {sorted(expected)}, "
                f"found {sorted(seen, key=str)}"
            )
        # Each shard must have finished every job its header announced —
        # an interrupted shard would otherwise merge into a silently
        # incomplete "canonical" result.
        for header in headers:
            announced = header.get("n_jobs")
            finished = counts_by_path[header["path"]]
            if isinstance(announced, int) and finished < announced:
                raise ValueError(
                    f"Shard {header.get('shard_index')} "
                    f"({header['path']}) finished {finished} of "
                    f"{announced} jobs; resume it before merging, or pass "
                    "expect_complete=False for a partial merge"
                )

    method = methods.pop() if methods else "overlapping"
    result = BenchmarkResult(records=list(records.values()), method=method)
    return result.sort_canonical()
