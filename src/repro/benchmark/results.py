"""Benchmark result containers and table formatting."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["BenchmarkResult"]


@dataclass
class BenchmarkResult:
    """Raw per-signal benchmark records plus aggregation helpers.

    Every record is a dictionary with at least ``pipeline``, ``dataset``,
    ``signal``, the quality metrics (``f1``, ``precision``, ``recall``), the
    computational metrics (``fit_time``, ``detect_time``, ``memory``), and a
    ``status`` field (``"ok"`` or ``"error"``).
    """

    records: List[dict] = field(default_factory=list)
    method: str = "overlapping"

    def add(self, record: dict) -> None:
        """Append a record."""
        self.records.append(dict(record))

    # ------------------------------------------------------------------ #
    @property
    def pipelines(self) -> List[str]:
        """Pipelines present in the records."""
        return sorted({record["pipeline"] for record in self.records})

    @property
    def datasets(self) -> List[str]:
        """Datasets present in the records."""
        return sorted({record["dataset"] for record in self.records})

    def ok_records(self, pipeline: Optional[str] = None,
                   dataset: Optional[str] = None) -> List[dict]:
        """Successful records, optionally filtered."""
        selected = [record for record in self.records if record.get("status") == "ok"]
        if pipeline is not None:
            selected = [r for r in selected if r["pipeline"] == pipeline]
        if dataset is not None:
            selected = [r for r in selected if r["dataset"] == dataset]
        return selected

    # ------------------------------------------------------------------ #
    def quality_table(self, metrics=("f1", "precision", "recall")) -> Dict[str, dict]:
        """Aggregate quality metrics per pipeline per dataset (Table 3).

        Returns ``{pipeline: {dataset: {metric: (mean, std)}}}``.
        """
        table: Dict[str, dict] = {}
        for pipeline in self.pipelines:
            table[pipeline] = {}
            for dataset in self.datasets:
                rows = self.ok_records(pipeline, dataset)
                if not rows:
                    continue
                table[pipeline][dataset] = {
                    metric: (
                        float(np.mean([row[metric] for row in rows])),
                        float(np.std([row[metric] for row in rows])),
                    )
                    for metric in metrics
                }
        return table

    def computational_table(self) -> Dict[str, dict]:
        """Aggregate computational metrics per pipeline (Figure 7a).

        Returns ``{pipeline: {"fit_time": s, "detect_time": s, "memory": MB}}``
        summed over every benchmarked signal, mirroring the paper's totals.
        """
        table = {}
        for pipeline in self.pipelines:
            rows = self.ok_records(pipeline)
            if not rows:
                continue
            table[pipeline] = {
                "fit_time": float(np.sum([row["fit_time"] for row in rows])),
                "detect_time": float(np.sum([row["detect_time"] for row in rows])),
                "memory_mb": float(np.max([row.get("memory", 0) for row in rows]) / 1e6),
                "signals": len(rows),
            }
        return table

    # ------------------------------------------------------------------ #
    def format_quality(self) -> str:
        """Render the Table 3 layout as aligned text."""
        table = self.quality_table()
        lines = []
        header = f"{'pipeline':<24}" + "".join(
            f"{dataset + ' ' + metric:>18}"
            for dataset in self.datasets
            for metric in ("f1", "precision", "recall")
        )
        lines.append(header)
        lines.append("-" * len(header))
        for pipeline in self.pipelines:
            cells = [f"{pipeline:<24}"]
            for dataset in self.datasets:
                metrics = table.get(pipeline, {}).get(dataset)
                for metric in ("f1", "precision", "recall"):
                    if metrics is None:
                        cells.append(f"{'-':>18}")
                    else:
                        mean, std = metrics[metric]
                        cells.append(f"{mean:>10.3f} ±{std:>5.2f}")
            lines.append("".join(cells))
        return "\n".join(lines)

    def format_computational(self) -> str:
        """Render the Figure 7a aggregates as aligned text."""
        table = self.computational_table()
        lines = [f"{'pipeline':<24}{'train time (s)':>16}{'latency (s)':>14}"
                 f"{'memory (MB)':>14}{'signals':>10}"]
        lines.append("-" * len(lines[0]))
        for pipeline, row in sorted(table.items()):
            lines.append(
                f"{pipeline:<24}{row['fit_time']:>16.2f}{row['detect_time']:>14.2f}"
                f"{row['memory_mb']:>14.2f}{row['signals']:>10}"
            )
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Dump the raw records to a CSV file."""
        if not self.records:
            raise ValueError("There are no records to write")
        fieldnames = sorted({key for record in self.records for key in record})
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(self.records)

    def __len__(self) -> int:
        return len(self.records)
