"""The CI performance-regression gate.

Compares a freshly produced ``BENCH_*.json`` against a committed baseline:

* **coverage** — both runs must score the same (dataset, pipeline, signal)
  jobs; a disappeared record means the benchmark itself broke;
* **quality** — detection metrics (``f1`` / ``precision`` / ``recall``) and
  job status must match the baseline exactly (within ``quality_atol``):
  the benchmark slice is seeded and deterministic, so any drift is a
  behaviour change, not noise;
* **wall time** — per-pipeline total fit + detect time must stay inside a
  relative tolerance band of the baseline. Only slowdowns beyond the band
  fail the gate; a speedup beyond the band is reported as ``improved`` (a
  hint to refresh the baseline) but does not fail.

``compare_results`` returns a plain-data report; the ``python -m
repro.benchmark check`` CLI renders it and exits non-zero on failure,
which is what fails the CI build.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchmark.results import BenchmarkResult
from repro.benchmark.runner import job_key

__all__ = [
    "compare_results",
    "failure_kinds",
    "format_delta_table",
    "format_report",
    "QUALITY_METRICS",
]

#: Per-record quality fields compared against the baseline.
QUALITY_METRICS = ("f1", "precision", "recall")

#: Check statuses that fail the gate. ``extra`` fails too: a job that the
#: baseline does not know means the benchmark slice changed, and the
#: baseline must be refreshed deliberately rather than drift silently.
FAILING = ("regression", "mismatch", "missing", "extra")


def _record_key(record: dict) -> str:
    # Same identity the shard checkpoints use, so comparison targets line
    # up with checkpoint keys.
    return job_key(record.get("dataset", ""), record.get("pipeline", ""),
                   record.get("signal", ""))


def compare_results(current: BenchmarkResult, baseline: BenchmarkResult,
                    time_tolerance: float = 0.2,
                    quality_atol: float = 0.0) -> dict:
    """Compare a benchmark run against a baseline run.

    Args:
        current: the freshly produced result.
        baseline: the committed reference result.
        time_tolerance: allowed relative wall-time deviation per pipeline
            (``0.2`` = ±20%). Only slowdowns beyond the band fail.
        quality_atol: absolute tolerance on quality metrics (``0.0`` =
            exact, the contract for seeded deterministic slices).

    Returns:
        ``{"status": "pass"|"fail", "checks": [...], ...}`` where each
        check carries ``kind``, ``target``, ``status`` and a human-readable
        ``detail``.
    """
    if time_tolerance < 0:
        raise ValueError("time_tolerance must be non-negative")
    if quality_atol < 0:
        raise ValueError("quality_atol must be non-negative")

    checks: List[dict] = []

    # -- coverage: both runs must contain exactly the same jobs.
    current_records = {_record_key(r): r for r in current.records}
    baseline_records = {_record_key(r): r for r in baseline.records}
    for key in sorted(set(baseline_records) - set(current_records)):
        checks.append({
            "kind": "coverage", "target": key, "status": "missing",
            "detail": "job present in the baseline but absent from this run",
        })
    for key in sorted(set(current_records) - set(baseline_records)):
        checks.append({
            "kind": "coverage", "target": key, "status": "extra",
            "detail": "job absent from the baseline (refresh the baseline "
                      "after changing the benchmark slice)",
        })

    # -- quality: per-record metrics must match the baseline.
    n_quality_failures = len(checks)
    for key in sorted(set(current_records) & set(baseline_records)):
        now, then = current_records[key], baseline_records[key]
        if now.get("status") != then.get("status"):
            checks.append({
                "kind": "quality", "target": key, "status": "mismatch",
                "detail": (f"status changed: {then.get('status')!r} -> "
                           f"{now.get('status')!r}"),
            })
            continue
        drifted = [
            f"{metric} {float(then.get(metric, 0.0)):.6f} -> "
            f"{float(now.get(metric, 0.0)):.6f}"
            for metric in QUALITY_METRICS
            if abs(float(now.get(metric, 0.0)) - float(then.get(metric, 0.0)))
            > quality_atol
        ]
        if drifted:
            checks.append({
                "kind": "quality", "target": key, "status": "mismatch",
                "detail": "; ".join(drifted),
            })

    shared = set(current_records) & set(baseline_records)
    if shared and len(checks) == n_quality_failures:
        checks.append({
            "kind": "quality", "target": f"{len(shared)} records",
            "status": "ok",
            "detail": "status and quality metrics match the baseline",
        })

    # -- wall time: per-pipeline totals within the tolerance band.
    current_times = _pipeline_times(current)
    baseline_times = _pipeline_times(baseline)
    for pipeline in sorted(set(current_times) & set(baseline_times)):
        now, then = current_times[pipeline], baseline_times[pipeline]
        if then <= 0.0:
            continue
        ratio = now / then
        if ratio > 1.0 + time_tolerance:
            status = "regression"
            detail = (f"total wall time {then:.3f}s -> {now:.3f}s "
                      f"({ratio:.2f}x, tolerance {1.0 + time_tolerance:.2f}x)")
        elif ratio < 1.0 - time_tolerance:
            status = "improved"
            detail = (f"total wall time {then:.3f}s -> {now:.3f}s "
                      f"({ratio:.2f}x); consider refreshing the baseline")
        else:
            status = "ok"
            detail = f"total wall time {then:.3f}s -> {now:.3f}s ({ratio:.2f}x)"
        checks.append({"kind": "wall_time", "target": pipeline,
                       "status": status, "detail": detail,
                       "baseline_seconds": then, "current_seconds": now})

    # -- per-pipeline delta rows: the human-readable summary `check` prints.
    quality_by_pipeline: Dict[str, int] = {}
    for check in checks:
        if check["kind"] != "quality" or check["status"] not in FAILING:
            continue
        record = current_records.get(check["target"]) \
            or baseline_records.get(check["target"]) or {}
        pipeline = record.get("pipeline", "?")
        quality_by_pipeline[pipeline] = quality_by_pipeline.get(pipeline, 0) + 1
    pipelines = []
    for pipeline in sorted(set(current_times) | set(baseline_times)
                           | set(quality_by_pipeline)):
        then = baseline_times.get(pipeline)
        now = current_times.get(pipeline)
        ratio = (now / then if then and now is not None and then > 0 else None)
        time_status = "n/a"
        for check in checks:
            if check["kind"] == "wall_time" and check["target"] == pipeline:
                time_status = check["status"]
        mismatches = quality_by_pipeline.get(pipeline, 0)
        pipelines.append({
            "pipeline": pipeline,
            "baseline_seconds": then,
            "current_seconds": now,
            "time_ratio": ratio,
            "time_status": time_status,
            "quality": "match" if not mismatches
            else f"{mismatches} mismatch(es)",
        })

    failed = [check for check in checks if check["status"] in FAILING]
    return {
        "status": "fail" if failed else "pass",
        "time_tolerance": time_tolerance,
        "quality_atol": quality_atol,
        "n_checks": len(checks),
        "n_failed": len(failed),
        "checks": checks,
        "pipelines": pipelines,
    }


def failure_kinds(report: dict) -> set:
    """Classify a report's failures as ``{"quality", "timing"}`` subsets.

    Coverage problems (missing / extra jobs) and metric or status drift
    count as ``quality`` — the benchmark's *behaviour* changed. Wall-time
    regressions count as ``timing``. The CLI maps these to distinct exit
    codes so CI can tell a correctness break from a slowdown.
    """
    kinds = set()
    for check in report["checks"]:
        if check["status"] not in FAILING:
            continue
        kinds.add("timing" if check["kind"] == "wall_time" else "quality")
    return kinds


def _pipeline_times(result: BenchmarkResult) -> Dict[str, float]:
    table = result.computational_table()
    return {pipeline: row["fit_time"] + row["detect_time"]
            for pipeline, row in table.items()}


def format_delta_table(report: dict) -> str:
    """Render the per-pipeline delta rows as an aligned console table.

    One row per pipeline: baseline vs current total wall time, the ratio,
    the timing verdict, and whether the pipeline's quality metrics match
    the baseline.
    """
    header = (f"{'pipeline':<26} {'baseline':>10} {'current':>10} "
              f"{'ratio':>7} {'timing':>11} {'quality':>15}")
    lines = [header, "-" * len(header)]
    for row in report.get("pipelines", []):
        then = ("-" if row["baseline_seconds"] is None
                else f"{row['baseline_seconds']:.3f}s")
        now = ("-" if row["current_seconds"] is None
               else f"{row['current_seconds']:.3f}s")
        ratio = "-" if row["time_ratio"] is None else f"{row['time_ratio']:.2f}x"
        lines.append(
            f"{row['pipeline']:<26} {then:>10} {now:>10} "
            f"{ratio:>7} {row['time_status']:>11} {row['quality']:>15}"
        )
    if len(lines) == 2:
        lines.append("(no shared pipelines)")
    return "\n".join(lines)


def format_report(report: dict) -> str:
    """Render a comparison report as aligned console text."""
    lines = [
        f"bench-regression: {report['status'].upper()} "
        f"({report['n_failed']}/{report['n_checks']} checks failed, "
        f"time tolerance ±{report['time_tolerance'] * 100:.0f}%)"
    ]
    for check in report["checks"]:
        flag = "FAIL" if check["status"] in FAILING else "  ok"
        lines.append(
            f"  [{flag}] {check['kind']:<10} {check['target']:<40} "
            f"{check['status']:<10} {check['detail']}"
        )
    return "\n".join(lines)
