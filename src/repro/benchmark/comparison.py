"""The feature-comparison matrix of anomaly-detection software (Table 1).

Table 1 of the paper is a static capability comparison between Sintel and
nine existing systems. The matrix below encodes the table verbatim so the
benchmark harness can regenerate it, and :func:`feature_coverage` verifies
that this reproduction actually provides the features the paper claims for
Sintel (each claim maps to a concrete module of this package).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["FEATURES", "SYSTEMS", "FEATURE_MATRIX", "SINTEL_FEATURE_MODULES",
           "feature_coverage", "format_table"]

#: Feature rows, grouped as in Table 1.
FEATURES: List[str] = [
    "end_user",
    "system_builder",
    "ml_researcher",
    "preprocessing",
    "modeling",
    "postprocessing",
    "modular",
    "evaluation",
    "benchmark",
    "database",
    "language_api",
    "rest_api",
    "hil",
]

#: Column order of Table 1.
SYSTEMS: List[str] = [
    "MS Azure", "ADTK", "Luminaire", "TODS", "Telemanom",
    "NAB", "EGADS", "Stumpy", "GluonTS", "Sintel",
]

#: The table itself: feature -> {system: supported}.
FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "end_user": {
        "MS Azure": True, "ADTK": True, "Luminaire": True, "TODS": False,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": True,
        "GluonTS": False, "Sintel": True,
    },
    "system_builder": {
        "MS Azure": True, "ADTK": False, "Luminaire": False, "TODS": False,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": False,
        "GluonTS": False, "Sintel": True,
    },
    "ml_researcher": {
        "MS Azure": False, "ADTK": False, "Luminaire": False, "TODS": True,
        "Telemanom": True, "NAB": True, "EGADS": True, "Stumpy": False,
        "GluonTS": True, "Sintel": True,
    },
    "preprocessing": {
        "MS Azure": False, "ADTK": True, "Luminaire": True, "TODS": True,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": True,
        "GluonTS": True, "Sintel": True,
    },
    "modeling": {
        "MS Azure": True, "ADTK": True, "Luminaire": True, "TODS": True,
        "Telemanom": True, "NAB": True, "EGADS": True, "Stumpy": False,
        "GluonTS": True, "Sintel": True,
    },
    "postprocessing": {
        "MS Azure": False, "ADTK": True, "Luminaire": True, "TODS": True,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": True,
        "GluonTS": False, "Sintel": True,
    },
    "modular": {
        "MS Azure": False, "ADTK": True, "Luminaire": True, "TODS": True,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": True,
        "GluonTS": True, "Sintel": True,
    },
    "evaluation": {
        "MS Azure": False, "ADTK": True, "Luminaire": False, "TODS": False,
        "Telemanom": True, "NAB": False, "EGADS": False, "Stumpy": False,
        "GluonTS": False, "Sintel": True,
    },
    "benchmark": {
        "MS Azure": False, "ADTK": False, "Luminaire": False, "TODS": True,
        "Telemanom": False, "NAB": True, "EGADS": False, "Stumpy": False,
        "GluonTS": True, "Sintel": True,
    },
    "database": {
        "MS Azure": True, "ADTK": False, "Luminaire": False, "TODS": False,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": False,
        "GluonTS": False, "Sintel": True,
    },
    "language_api": {
        "MS Azure": True, "ADTK": True, "Luminaire": True, "TODS": True,
        "Telemanom": False, "NAB": True, "EGADS": False, "Stumpy": True,
        "GluonTS": True, "Sintel": True,
    },
    "rest_api": {
        "MS Azure": True, "ADTK": False, "Luminaire": False, "TODS": False,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": False,
        "GluonTS": False, "Sintel": True,
    },
    "hil": {
        "MS Azure": False, "ADTK": False, "Luminaire": False, "TODS": False,
        "Telemanom": False, "NAB": False, "EGADS": False, "Stumpy": False,
        "GluonTS": False, "Sintel": True,
    },
}

#: For every Sintel feature claimed in Table 1, the module of this
#: reproduction that provides it (importable path).
SINTEL_FEATURE_MODULES: Dict[str, str] = {
    "end_user": "repro.core.sintel",
    "system_builder": "repro.pipelines.hub",
    "ml_researcher": "repro.core.primitive",
    "preprocessing": "repro.primitives.preprocessing",
    "modeling": "repro.primitives.modeling",
    "postprocessing": "repro.primitives.postprocessing",
    "modular": "repro.core.pipeline",
    "evaluation": "repro.evaluation",
    "benchmark": "repro.benchmark.runner",
    "database": "repro.db",
    "language_api": "repro.core.sintel",
    "rest_api": "repro.api",
    "hil": "repro.hil",
}


def feature_coverage() -> Dict[str, bool]:
    """Check that every Sintel feature maps to an importable module here."""
    import importlib

    coverage = {}
    for feature, module in SINTEL_FEATURE_MODULES.items():
        try:
            importlib.import_module(module)
            coverage[feature] = True
        except ImportError:
            coverage[feature] = False
    return coverage


def format_table() -> str:
    """Render Table 1 as aligned text (✓ / ✗ per system and feature)."""
    width = max(len(system) for system in SYSTEMS) + 2
    header = f"{'feature':<18}" + "".join(f"{system:>{width}}" for system in SYSTEMS)
    lines = [header, "-" * len(header)]
    for feature in FEATURES:
        row = FEATURE_MATRIX[feature]
        cells = "".join(
            f"{'yes' if row[system] else 'no':>{width}}" for system in SYSTEMS
        )
        lines.append(f"{feature:<18}{cells}")
    return "\n".join(lines)
