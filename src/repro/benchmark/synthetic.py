"""Ground-truth quality benchmark over the labeled synthetic workload.

The real datasets score detectors against curated-but-opaque annotations;
the :class:`~repro.data.synthetic.WorkloadGenerator` fleet scores them
against *known* ground truth with a per-anomaly class taxonomy. That makes
two things gateable in CI that the dataset benchmarks cannot gate:

* **per-class quality** — recall broken down by anomaly class (point /
  contextual / collective / changepoint) plus overall precision, per
  pipeline, compared against the committed ``BENCH_synthetic.json``
  baseline with a small tolerance;
* **channel attribution** — the multivariate pipelines' dominant-channel
  claim checked against the labels' affected channels.

Everything is seeded: the generator is deterministic across platforms and
start methods, and the pipelines are deterministic given their seeds, so
the quality numbers are reproducible rather than statistical.

``disable_detection=True`` is the negative control: the run proceeds
normally but every pipeline's detections are discarded before scoring,
simulating a silently broken detection stage. The gate MUST fail on that
run — CI asserts it does, proving the gate is load-bearing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.sintel import Sintel
from repro.data.signal import LABELS_KEY, Signal
from repro.data.synthetic import WorkloadGenerator
from repro.evaluation import (
    attribution_accuracy,
    merge_class_scores,
    per_class_scores,
)

__all__ = [
    "SYNTHETIC_PIPELINES",
    "SYNTHETIC_MV_PIPELINE",
    "default_synthetic_fleet",
    "default_mv_fleet",
    "benchmark_synthetic",
    "synthetic_gate",
    "format_synthetic",
]

#: The univariate pipelines the synthetic quality leg runs, with
#: deterministic fast configurations. The pair is chosen for complementary
#: blind spots: azure (spectral residual) catches contextual anomalies but
#: with low precision; the dense autoencoder is precise but nearly blind to
#: contextual anomalies. Gating both per class keeps either failure mode
#: from hiding in an average.
SYNTHETIC_PIPELINES: Dict[str, dict] = {
    "azure": {"k": 2.5},
    "dense_autoencoder": {"window_size": 40, "epochs": 8},
}

#: The multivariate pipeline used for the channel-attribution gate.
SYNTHETIC_MV_PIPELINE: Tuple[str, dict] = (
    "mv_dense_autoencoder", {"window_size": 30, "epochs": 10},
)

#: Generator settings for the committed baseline. Changing any of these
#: invalidates ``BENCH_synthetic.json`` — regenerate it in the same commit.
FLEET_SEED = 42
FLEET_SIGNALS = 8
FLEET_LENGTH = 600
MV_FLEET_SEED = 7
MV_FLEET_SIGNALS = 3
MV_FLEET_CHANNELS = 3
MV_FLEET_LENGTH = 500


def default_synthetic_fleet(seed: int = FLEET_SEED,
                            n_signals: int = FLEET_SIGNALS,
                            length: int = FLEET_LENGTH) -> List[Signal]:
    """The univariate labeled fleet the quality gate runs on."""
    generator = WorkloadGenerator(seed=seed, n_channels=1, length=length,
                                  anomalies_per_signal=3)
    return [generator.signal(index) for index in range(n_signals)]


def default_mv_fleet(seed: int = MV_FLEET_SEED,
                     n_signals: int = MV_FLEET_SIGNALS,
                     n_channels: int = MV_FLEET_CHANNELS,
                     length: int = MV_FLEET_LENGTH) -> List[Signal]:
    """The multivariate labeled fleet the attribution gate runs on."""
    generator = WorkloadGenerator(seed=seed, n_channels=n_channels,
                                  length=length, anomalies_per_signal=2)
    return [generator.signal(index) for index in range(n_signals)]


def _run_pipeline(name: str, options: dict, signals: List[Signal],
                  executor=None,
                  disable_detection: bool = False) -> List[list]:
    """Fit+detect one pipeline on every signal, returning events per signal."""
    detections = []
    for signal in signals:
        data = signal.to_array()
        sintel = Sintel(name, executor=executor, **options)
        sintel.fit(data)
        detected = sintel.detect(data)
        if disable_detection:
            detected = []
        detections.append(detected)
    return detections


def _quality_view(detections: List[list]) -> List[List[Tuple[float, float]]]:
    """Reduce detections to the deterministic fields used for parity."""
    return [[(float(row[0]), float(row[1])) for row in events]
            for events in detections]


def benchmark_synthetic(pipelines: Optional[Dict[str, dict]] = None,
                        disable_detection: bool = False,
                        parity_executor: Optional[str] = "process",
                        mv: bool = True) -> dict:
    """Run the synthetic ground-truth quality benchmark.

    Args:
        pipelines: mapping pipeline name -> options; defaults to
            :data:`SYNTHETIC_PIPELINES`.
        disable_detection: the negative control — discard every detection
            before scoring, so the gate must fail.
        parity_executor: executor name to re-run the first pipeline under
            and compare against the serial events exactly (``None`` skips).
        mv: also run the multivariate attribution leg.

    Returns a JSON-serializable result dictionary.
    """
    pipelines = dict(pipelines or SYNTHETIC_PIPELINES)
    fleet = default_synthetic_fleet()
    generator = WorkloadGenerator(seed=FLEET_SEED, n_channels=1,
                                  length=FLEET_LENGTH, anomalies_per_signal=3)

    result: dict = {
        "fleet": {
            "seed": FLEET_SEED,
            "n_signals": FLEET_SIGNALS,
            "length": FLEET_LENGTH,
            "fingerprint": generator.fingerprint(FLEET_SIGNALS),
        },
        "disable_detection": bool(disable_detection),
        "pipelines": {},
    }

    first_detections = None
    for name, options in pipelines.items():
        detections = _run_pipeline(name, options, fleet,
                                   disable_detection=disable_detection)
        if first_detections is None:
            first_detections = detections
        scores = [per_class_scores(signal.metadata[LABELS_KEY], events)
                  for signal, events in zip(fleet, detections)]
        merged = merge_class_scores(scores)
        merged["options"] = options
        result["pipelines"][name] = merged

    # Executor parity: the first pipeline re-run under another executor
    # must produce exactly the same events as the serial run.
    if parity_executor is not None and pipelines:
        first_name, first_options = next(iter(pipelines.items()))
        parity_detections = _run_pipeline(
            first_name, first_options, fleet, executor=parity_executor,
            disable_detection=disable_detection)
        result["parity"] = {
            "pipeline": first_name,
            "executor": parity_executor,
            "ok": _quality_view(parity_detections)
            == _quality_view(first_detections),
        }

    if mv:
        name, options = SYNTHETIC_MV_PIPELINE
        mv_fleet = default_mv_fleet()
        detections = _run_pipeline(name, options, mv_fleet,
                                   disable_detection=disable_detection)
        accuracy = [attribution_accuracy(signal.metadata[LABELS_KEY], events)
                    for signal, events in zip(mv_fleet, detections)]
        correct = sum(item["correct"] for item in accuracy)
        total = sum(item["total"] for item in accuracy)
        result["attribution"] = {
            "pipeline": name,
            "options": options,
            "fleet": {
                "seed": MV_FLEET_SEED,
                "n_signals": MV_FLEET_SIGNALS,
                "n_channels": MV_FLEET_CHANNELS,
                "length": MV_FLEET_LENGTH,
            },
            "correct": correct,
            "total": total,
            "accuracy": correct / total if total else 0.0,
        }

    return result


#: Slack allowed between the committed baseline and a fresh run. Quality is
#: deterministic on a fixed platform; the tolerance only absorbs numeric
#: differences across BLAS builds and Python versions.
GATE_TOLERANCE = 0.1


def synthetic_gate(current: dict, baseline: dict,
                   tolerance: float = GATE_TOLERANCE) -> Tuple[bool, List[str]]:
    """Gate a fresh run against the committed baseline.

    Checks, per pipeline: recall per anomaly class and overall precision
    must not drop more than ``tolerance`` below the baseline. The
    multivariate leg's attribution accuracy is gated the same way, and at
    least one truth-overlapping attributed event must exist at all.

    Returns ``(ok, failures)`` where ``failures`` lists every violated
    check — empty when the gate passes.
    """
    failures: List[str] = []

    for name, base in baseline.get("pipelines", {}).items():
        fresh = current.get("pipelines", {}).get(name)
        if fresh is None:
            failures.append(f"{name}: missing from the current run")
            continue
        for cls, counts in base["classes"].items():
            floor = counts["recall"] - tolerance
            got = fresh["classes"].get(cls, {}).get("recall", 0.0)
            if got < floor:
                failures.append(
                    f"{name}: recall[{cls}] {got:.2f} < floor {floor:.2f}")
        floor = base["precision"] - tolerance
        if fresh["precision"] < floor:
            failures.append(
                f"{name}: precision {fresh['precision']:.2f} "
                f"< floor {floor:.2f}")

    base_attr = baseline.get("attribution")
    if base_attr is not None:
        fresh_attr = current.get("attribution")
        if fresh_attr is None:
            failures.append("attribution: missing from the current run")
        else:
            if fresh_attr["total"] == 0:
                failures.append("attribution: no attributed events "
                                "overlapped a labeled truth")
            floor = base_attr["accuracy"] - tolerance
            if fresh_attr["accuracy"] < floor:
                failures.append(
                    f"attribution: accuracy {fresh_attr['accuracy']:.2f} "
                    f"< floor {floor:.2f}")

    parity = current.get("parity")
    if parity is not None and not parity["ok"]:
        failures.append(
            f"parity: {parity['pipeline']} events under "
            f"{parity['executor']} executor diverged from serial")

    return not failures, failures


def format_synthetic(result: dict) -> str:
    """Render a result dictionary as the human-readable report table."""
    lines = [
        "Synthetic ground-truth quality "
        f"(fleet seed={result['fleet']['seed']}, "
        f"n={result['fleet']['n_signals']}, "
        f"fingerprint={result['fleet']['fingerprint'][:12]})",
    ]
    for name, scores in result["pipelines"].items():
        lines.append(f"{name} (precision {scores['precision']:.2f}, "
                     f"recall {scores['recall']:.2f}, f1 {scores['f1']:.2f})")
        for cls, counts in scores["classes"].items():
            lines.append(f"    {cls:<12} recall {counts['tp']}/"
                         f"{counts['support']} = {counts['recall']:.2f}")
    attribution = result.get("attribution")
    if attribution:
        lines.append(
            f"{attribution['pipeline']} channel attribution "
            f"{attribution['correct']}/{attribution['total']} "
            f"= {attribution['accuracy']:.2f}")
    parity = result.get("parity")
    if parity:
        lines.append(f"parity ({parity['pipeline']} via "
                     f"{parity['executor']}): "
                     f"{'ok' if parity['ok'] else 'DIVERGED'}")
    return "\n".join(lines)
